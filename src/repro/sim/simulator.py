"""Top-level simulator: configuration + trace -> performance and energy.

:class:`Simulator` instantiates the memory hierarchy, the translation path,
the selected L1 interface model and the out-of-order pipeline from a
:class:`~repro.sim.config.SimulationConfig`, runs a workload trace through
them and collects a :class:`SimulationResult` carrying the execution time,
the raw event counters and the energy report — everything the benchmark
harness needs to regenerate Fig. 4a/4b and the Sec. VI analyses.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.api import RunOptions
from repro.cpu.instruction import Instruction
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineParametersLite
from repro.energy.accounting import EnergyAccountant, EnergyReport
from repro.energy.energy_model import InterfaceEnergyModel
from repro.interfaces.base import BaseL1Interface
from repro.interfaces.base_1ldst import BaselineSingleInterface
from repro.interfaces.base_2ld1st import BaselineDualLoadInterface
from repro.interfaces.malec import MalecInterface
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.config import InterfaceKind, SimulationConfig
from repro.sim.kernels import compile_kernel, resolve_kernel
from repro.stats import StatCounters
from repro.tlb.tlb import TLBHierarchy


#: per-process memo of energy models, keyed by the (frozen, hashable)
#: simulation configuration.  A model is a pure function of the config —
#: array specs, event map and the memoised access/leakage energies — so one
#: instance can be shared by every Simulator of a sweep cell shape.
_ENERGY_MODEL_CACHE: Dict[SimulationConfig, InterfaceEnergyModel] = {}

_ENERGY_MODEL_CACHE_LIMIT = 512


def _energy_model_for(config: SimulationConfig) -> InterfaceEnergyModel:
    """Build (or fetch) the energy model of ``config``."""
    model = _ENERGY_MODEL_CACHE.get(config)
    if model is None:
        if len(_ENERGY_MODEL_CACHE) >= _ENERGY_MODEL_CACHE_LIMIT:
            _ENERGY_MODEL_CACHE.clear()
        model = _ENERGY_MODEL_CACHE[config] = InterfaceEnergyModel(
            config.energy_model_config()
        )
    return model


def _guarded_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with the zero-denominator convention.

    Every derived-rate property of :class:`SimulationResult` funnels through
    this helper so the "0.0 when the denominator never counted" behaviour is
    applied consistently (an empty trace, a configuration without way
    determination, a run with no loads, ...).
    """
    return numerator / denominator if denominator else 0.0


@dataclass
class SimulationResult:
    """Outcome of one (configuration, trace) simulation."""

    config_name: str
    cycles: int
    instructions: int
    loads: int
    stores: int
    energy: EnergyReport
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return _guarded_ratio(self.instructions, self.cycles)

    @property
    def l1_load_miss_rate(self) -> float:
        """Fraction of L1 load accesses that missed."""
        return _guarded_ratio(
            self.stats.get("l1.load_miss", 0.0), self.stats.get("l1.load", 0.0)
        )

    @property
    def way_coverage(self) -> float:
        """Fraction of MALEC L1 accesses with a known way (0 for baselines)."""
        return _guarded_ratio(
            self.stats.get("malec.way_known", 0.0),
            self.stats.get("malec.way_lookup", 0.0),
        )

    @property
    def merged_load_fraction(self) -> float:
        """Fraction of loads that shared another load's bank access."""
        merged = self.stats.get("interface.loads_merged", 0.0)
        accesses = self.stats.get("interface.load_accesses", 0.0)
        return _guarded_ratio(merged, merged + accesses)

    def normalized_time(self, baseline: "SimulationResult") -> float:
        """Execution time relative to ``baseline`` (Fig. 4a's y-axis)."""
        if baseline.cycles == 0:
            raise ValueError("baseline has zero cycles")
        return self.cycles / baseline.cycles

    def normalized_energy(self, baseline: "SimulationResult") -> Dict[str, float]:
        """Dynamic/leakage/total energy relative to ``baseline`` (Fig. 4b)."""
        return self.energy.normalized_to(baseline.energy)


class Simulator:
    """Builds and runs one configuration."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.stats = StatCounters()
        self.hierarchy = MemoryHierarchy(
            layout=config.cache.layout,
            l1_hit_latency=config.cache.l1_hit_latency,
            l2_latency=config.cache.l2_latency,
            dram_latency=config.cache.dram_latency,
            l1_read_ports=config.l1_read_ports,
            restrict_way_allocation=(
                config.interface is InterfaceKind.MALEC
                and config.malec_options.way_determination == "wt"
                and config.malec_options.restrict_way_allocation
            ),
            seed=config.seed,
            stats=self.stats,
        )
        self.translation = TLBHierarchy(
            layout=config.cache.layout,
            utlb_entries=config.tlb.utlb_entries,
            tlb_entries=config.tlb.tlb_entries,
            walk_latency=config.tlb.walk_latency,
            stats=self.stats,
            seed=config.seed,
        )
        self.interface = self._build_interface()
        # Energy models are immutable once built; memoised per configuration
        # so a sweep builds each cell shape's model once, not once per cell.
        self.energy_model = _energy_model_for(config)
        self.accountant = EnergyAccountant(self.energy_model)
        #: kernel selection resolved by the last run() ("specialized"/"generic")
        self.kernel_requested: Optional[str] = None
        #: whether the last run()'s measured pipeline executed a specialized kernel
        self.kernel_used = False
        #: why the last run() fell back to the generic loop (None if it didn't)
        self.kernel_fallback_reason: Optional[str] = None

    # ------------------------------------------------------------------
    def _build_interface(self) -> BaseL1Interface:
        config = self.config
        common = dict(
            stats=self.stats,
            lq_entries=config.lq_entries,
            sb_entries=config.sb_entries,
            mb_entries=config.mb_entries,
            layout=config.cache.layout,
        )
        if config.interface is InterfaceKind.BASE_1LDST:
            return BaselineSingleInterface(self.hierarchy, self.translation, **common)
        if config.interface is InterfaceKind.BASE_2LD1ST:
            return BaselineDualLoadInterface(self.hierarchy, self.translation, **common)
        malec = config.malec_options
        return MalecInterface(
            self.hierarchy,
            self.translation,
            way_determination=malec.way_determination,
            wdu_entries=malec.wdu_entries,
            enable_feedback_update=malec.enable_feedback_update,
            merge_granularity=malec.merge_granularity,
            result_buses=malec.result_buses,
            input_buffer_capacity=malec.input_buffer_capacity,
            merge_window=malec.merge_window,
            **common,
        )

    # ------------------------------------------------------------------
    def _pipeline_parameters(self) -> PipelineParametersLite:
        return PipelineParametersLite(
            rob_entries=self.config.pipeline.rob_entries,
            fetch_width=self.config.pipeline.fetch_width,
            issue_width=self.config.pipeline.issue_width,
            commit_width=self.config.pipeline.commit_width,
        )

    @staticmethod
    def _count_kernel_fallback(reason: str) -> None:
        """Bump the ``kernel.fallback.<reason>`` counter iff metrics are on.

        Lazy import: ``repro.obs`` pulls in this module (attribution), so a
        top-level import would be circular — same idiom as the columnar
        frontend import below.
        """
        from repro.obs import metrics as obs_metrics

        if obs_metrics.enabled():
            slug = reason.replace(" ", "_")
            obs_metrics.registry.counter(f"kernel.fallback.{slug}").inc()

    def _kernel_entry(self, kernel: Optional[str], collector, scheduler: str = "event"):
        """Resolve the kernel selection and compile the entry point (or not).

        Returns the compiled ``kernel_run`` callable, or ``None`` when the
        generic loop should run — recording why in
        ``kernel_fallback_reason`` so ``repro report`` can say so (and, with
        metrics on, bumping ``kernel.fallback.<reason>`` so the observer
        effect shows up in snapshots and telemetry journals too).
        """
        choice = resolve_kernel(kernel)
        self.kernel_requested = choice
        self.kernel_used = False
        self.kernel_fallback_reason = None
        if choice != "specialized":
            return None
        if scheduler != "event":
            # Specialized kernels are fused event-driven loops; the cycle
            # scheduler is the reference path and never runs one.
            self.kernel_fallback_reason = "cycle scheduler"
            self._count_kernel_fallback(self.kernel_fallback_reason)
            return None
        if collector is not None:
            # Attribution instruments the generic loop's stages; specialized
            # kernels have no per-stage hooks, so collector runs take the
            # generic path (bit-identical results either way).
            self.kernel_fallback_reason = "collector attached"
            self._count_kernel_fallback(self.kernel_fallback_reason)
            return None
        return compile_kernel(self.config).entry

    def _note_kernel_outcome(self, entry, pipeline) -> None:
        """Record whether the measured pipeline actually used ``entry``."""
        if entry is None:
            return
        self.kernel_used = pipeline.kernel_used
        if pipeline.kernel_fallback:
            self.kernel_fallback_reason = "runtime guard mismatch"
            self._count_kernel_fallback(self.kernel_fallback_reason)

    def run(
        self,
        trace: Iterable[Instruction],
        warmup_fraction: float = 0.0,
        collector=None,
        frontend: Optional[str] = None,
        kernel: Optional[str] = None,
        options: Optional[RunOptions] = None,
    ) -> SimulationResult:
        """Execute ``trace`` and return performance plus energy results.

        ``options`` is the preferred way to configure the run: one
        :class:`repro.api.RunOptions` carrying frontend, kernel, scheduler
        and collector.  The loose ``collector=``/``frontend=``/``kernel=``
        keywords remain as deprecated fallbacks that resolve into a
        ``RunOptions`` (via :meth:`RunOptions.from_env`, which also absorbs
        the deprecated environment variables); mixing them with ``options=``
        raises ``ValueError``.

        ``warmup_fraction`` runs the first part of the trace only to warm the
        caches, TLBs and way tables; its cycles and events are discarded
        before the measured portion starts.  The paper measures warmed-up
        Simpoint phases, so the experiment harness uses a non-zero warm-up to
        keep compulsory misses from dominating the (much shorter) synthetic
        traces.

        ``collector`` optionally attaches a
        :class:`repro.obs.collector.RunCollector` to the *measured* pipeline
        (warm-up cycles are discarded from results, so they are excluded from
        attribution too).  Observation is strictly additive — the returned
        result is bit-identical with and without a collector.

        ``kernel`` selects the hot-loop implementation: ``"specialized"``
        (the default; overridable process-wide through ``REPRO_SIM_KERNEL``)
        runs a per-configuration generated kernel — the event-driven loop
        fused with the interface tick and batched stat accounting (see
        :mod:`repro.sim.kernels`); ``"generic"`` keeps the interpreted loop
        as the differential oracle.  Results are bit-identical either way
        (enforced by ``tests/test_kernel_differential.py``).  Collector runs
        fall back to the generic loop and record why in
        ``kernel_fallback_reason``.

        ``frontend`` selects how the trace is fed to the pipeline:
        ``"columnar"`` (the default; overridable process-wide through
        ``REPRO_TRACE_FRONTEND``) runs traces that expose a ``columnar()``
        view — :class:`~repro.workloads.trace.MemoryTrace` and
        :class:`~repro.workloads.columnar.ColumnarTrace` — through the
        column-batched path with no per-instruction objects in the loop;
        ``"object"`` forces the original Instruction-list path, kept as the
        differential-testing oracle.  Results are bit-identical either way
        (enforced by ``tests/test_columnar_differential.py``).  Plain
        iterables of Instructions always take the object path.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must lie in [0, 1)")
        if options is not None:
            if collector is not None or frontend is not None or kernel is not None:
                raise ValueError(
                    "pass options= or the legacy collector=/frontend=/kernel= "
                    "keywords, not both"
                )
        else:
            options = RunOptions.from_env(
                collector=collector, frontend=frontend, kernel=kernel
            )
        collector = options.collector
        scheduler = options.resolved_scheduler()
        entry = self._kernel_entry(options.kernel, collector, scheduler)
        if options.resolved_frontend() == "columnar":
            as_columnar = getattr(trace, "columnar", None)
            if as_columnar is not None:
                return self._run_columnar(
                    as_columnar(), warmup_fraction, collector, entry, scheduler
                )
        instructions = list(trace)
        # Warm the layout's memoised address decomposition in one pass so
        # every address is decomposed exactly once, not once per interface
        # structure (the layout the interfaces slice with is the config's).
        warm = getattr(trace, "precompute_decompositions", None)
        if warm is not None:
            warm(self.config.cache.layout)
        else:
            decompose = self.config.cache.layout.decompose
            for instruction in instructions:
                if instruction.address is not None:
                    decompose(instruction.address)
        warmup_count = int(len(instructions) * warmup_fraction)
        # Seq-indexed instruction facts, built once per trace and shared by
        # the warm-up and measured pipelines of every configuration.
        arrays = getattr(trace, "pipeline_arrays", None)
        trace_arrays = arrays() if arrays is not None else None
        params = self._pipeline_parameters()
        # The cycle loop allocates short-lived objects at a rate that keeps
        # the cyclic collector busy for nothing (the simulator builds no
        # reference cycles); pausing it for the run is a pure wall-time win.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            if warmup_count:
                warmup_pipeline = OutOfOrderPipeline(
                    self.interface,
                    params=params,
                    stats=self.stats,
                    scheduler=scheduler,
                    kernel=entry,
                )
                warmup_pipeline.run(instructions[:warmup_count], trace_arrays)
                self.stats.clear()
            pipeline = OutOfOrderPipeline(
                self.interface,
                params=params,
                stats=self.stats,
                scheduler=scheduler,
                collector=collector,
                kernel=entry,
            )
            outcome = pipeline.run(instructions[warmup_count:], trace_arrays)
            self._note_kernel_outcome(entry, pipeline)
        finally:
            if gc_was_enabled:
                gc.enable()
        energy = self.accountant.report(self.stats, outcome.cycles)
        return SimulationResult(
            config_name=self.config.name,
            cycles=outcome.cycles,
            instructions=outcome.instructions,
            loads=outcome.loads,
            stores=outcome.stores,
            energy=energy,
            stats=self.stats.as_dict(),
        )

    def _run_columnar(
        self, view, warmup_fraction: float, collector, entry=None, scheduler="event"
    ) -> SimulationResult:
        """The column-batched run: no Instruction lists anywhere in the loop.

        The layout memo is warmed in one batched pass over the distinct
        address set, the pipeline receives zero-copy ``run_slice`` windows
        for the warm-up and measured portions, and the seq-indexed arrays
        are built once per view and shared by both (and by every other
        configuration running the same view).  Statistically and energetically
        bit-identical to the object path — only the feeding changes.
        """
        view.precompute_decompositions(self.config.cache.layout)
        total = len(view)
        warmup_count = int(total * warmup_fraction)
        params = self._pipeline_parameters()
        # Same GC pause as the object path: the cycle loops allocate
        # short-lived objects at a rate that keeps the cyclic collector busy
        # for nothing.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            if warmup_count:
                warmup_pipeline = OutOfOrderPipeline(
                    self.interface,
                    params=params,
                    stats=self.stats,
                    scheduler=scheduler,
                    kernel=entry,
                )
                warmup_pipeline.run(view.run_slice(0, warmup_count))
                self.stats.clear()
            pipeline = OutOfOrderPipeline(
                self.interface,
                params=params,
                stats=self.stats,
                scheduler=scheduler,
                collector=collector,
                kernel=entry,
            )
            outcome = pipeline.run(view.run_slice(warmup_count, total))
            self._note_kernel_outcome(entry, pipeline)
        finally:
            if gc_was_enabled:
                gc.enable()
        energy = self.accountant.report(self.stats, outcome.cycles)
        return SimulationResult(
            config_name=self.config.name,
            cycles=outcome.cycles,
            instructions=outcome.instructions,
            loads=outcome.loads,
            stores=outcome.stores,
            energy=energy,
            stats=self.stats.as_dict(),
        )


def run_configuration(
    config: SimulationConfig,
    trace: Iterable[Instruction],
    warmup_fraction: float = 0.0,
    collector=None,
    frontend: Optional[str] = None,
    kernel: Optional[str] = None,
    options: Optional[RunOptions] = None,
) -> SimulationResult:
    """One-call helper: build a :class:`Simulator` for ``config`` and run ``trace``.

    Prefer ``options=`` (a :class:`repro.api.RunOptions`); the loose
    keywords remain as deprecated fallbacks, exactly as in
    :meth:`Simulator.run`.
    """
    return Simulator(config).run(
        trace,
        warmup_fraction=warmup_fraction,
        collector=collector,
        frontend=frontend,
        kernel=kernel,
        options=options,
    )
