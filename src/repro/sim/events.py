"""Event-wheel scheduling for the event-driven simulation core.

The cycle-driven pipeline loop of PR 2 polled every component every cycle
and special-cased fully idle stretches with an *idle fast-forward*.  This
module generalizes that special case: components register the cycle of
their next activity in an :class:`EventWheel`, the main loop asks the wheel
for the next cycle in which *anything* happens and jumps its clock straight
there.  "Quiescent" (the PR-2 protocol) becomes the degenerate case of "no
event scheduled".

Determinism
-----------
Results must stay bit-identical to the cycle-driven reference loop, so the
wheel is deterministic end to end:

* events scheduled for the same cycle are returned in a fixed order —
  first by the *component* that scheduled them (components are assigned
  monotonically increasing ids at registration time, so registration order
  is the tie-break order), then by insertion order within the component;
* no hashing of event payloads is involved anywhere; buckets are plain
  lists keyed by integer cycle.

The wheel is a calendar queue: a dictionary of per-cycle buckets plus a
min-heap of *bucket* cycles.  Scheduling into an existing bucket is a plain
list append (no heap operation), which matters because completions cluster
heavily — a page group of four loads completes in the same cycle, and one
DRAM miss wakes several dependents at once.  The heap only ever holds one
entry per distinct scheduled cycle.

Single-component mode
---------------------
``EventWheel(single_component=True)`` stores bare payloads (no component
tag, no per-cycle sort): with one producer, insertion order within a bucket
*is* the deterministic order.  The pipeline's completion wheel — the
hottest consumer — runs in this mode.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["EventWheel"]


class EventWheel:
    """Calendar queue of (cycle, component, payload) events.

    Components register once via :meth:`register` and receive an integer
    component id; ties at equal timestamps are broken by component id (i.e.
    registration order), then insertion order.  For single-component use,
    construct with ``single_component=True``: :meth:`schedule` /
    :meth:`pop_due` then skip the component machinery entirely while keeping
    the same deterministic FIFO-per-cycle ordering.
    """

    __slots__ = ("_buckets", "_cycle_heap", "_components", "_len", "_single")

    def __init__(self, single_component: bool = False) -> None:
        #: cycle -> list of (component_id, payload) — or bare payloads in
        #: single-component mode — in insertion order
        self._buckets: Dict[int, List[Any]] = {}
        #: min-heap with exactly one entry per non-empty bucket cycle
        self._cycle_heap: List[int] = []
        self._components: List[str] = []
        self._len = 0
        self._single = single_component

    # ------------------------------------------------------------------
    # Component registry (deterministic tie-breaking)
    # ------------------------------------------------------------------
    def register(self, name: str) -> int:
        """Register a component and return its tie-break id.

        Ids increase in registration order; at equal timestamps the wheel
        yields events of lower ids first, so a fixed registration sequence
        pins the intra-cycle processing order.
        """
        if self._single and self._components:
            raise ValueError("single-component wheel cannot register more components")
        self._components.append(name)
        return len(self._components) - 1

    def component_name(self, component_id: int) -> str:
        """Display name of a registered component (introspection/tests)."""
        return self._components[component_id]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, cycle: int, payload: Any, component_id: int = 0) -> None:
        """Schedule ``payload`` for ``cycle`` on behalf of ``component_id``."""
        event = payload if self._single else (component_id, payload)
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [event]
            heapq.heappush(self._cycle_heap, cycle)
        else:
            bucket.append(event)
        self._len += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def next_cycle(self) -> Optional[int]:
        """The earliest cycle holding a scheduled event, or ``None``."""
        heap = self._cycle_heap
        return heap[0] if heap else None

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pop_due(self, cycle: int) -> List[Any]:
        """Remove and return payloads of every event due at or before ``cycle``.

        Events are returned cycle by cycle; within one cycle, sorted by
        component id (stable, so insertion order breaks remaining ties).
        Single-component buckets skip the sort — their insertion order
        already is the deterministic order.
        """
        heap = self._cycle_heap
        if not heap or heap[0] > cycle:
            return []
        buckets = self._buckets
        heappop = heapq.heappop
        single = self._single
        due: List[Any] = []
        while heap and heap[0] <= cycle:
            bucket = buckets.pop(heappop(heap))
            self._len -= len(bucket)
            if single:
                due += bucket
            else:
                if len(bucket) > 1:
                    # sort() is stable: equal ids keep insertion order.
                    bucket.sort(key=_component_of)
                for _, payload in bucket:
                    due.append(payload)
        return due

    def clear(self) -> None:
        """Drop every scheduled event (component registrations survive)."""
        self._buckets.clear()
        self._cycle_heap.clear()
        self._len = 0


def _component_of(event: Tuple[int, Any]) -> int:
    """Sort key for intra-cycle ordering (module level: no closure per pop)."""
    return event[0]
