"""Simulation configuration: Table I (interfaces) and Table II (parameters).

:class:`SimulationConfig` aggregates everything needed to build one of the
analyzed configurations — the interface kind and its options, the memory
hierarchy latencies and geometry, the translation structures and the pipeline
widths — and offers factory classmethods for the five configurations that
appear in Fig. 4 (``Base1ldst``, ``Base1ldst_1cycleL1`` / ``Base2ld1st_1cycleL1``,
``Base2ld1st``, ``MALEC`` and ``MALEC_3cycleL1``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.energy.energy_model import EnergyModelConfig
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT


class InterfaceKind(enum.Enum):
    """The three L1 interface models of Table I."""

    BASE_1LDST = "Base1ldst"
    BASE_2LD1ST = "Base2ld1st"
    MALEC = "MALEC"


@dataclass(frozen=True)
class CacheParameters:
    """L1/L2/DRAM parameters (Table II defaults)."""

    l1_hit_latency: int = 2
    l2_latency: int = 12
    dram_latency: int = 54
    layout: AddressLayout = DEFAULT_LAYOUT


@dataclass(frozen=True)
class TLBParameters:
    """Translation structure sizes (Table II defaults)."""

    utlb_entries: int = 16
    tlb_entries: int = 64
    walk_latency: int = 30


@dataclass(frozen=True)
class PipelineParameters:
    """Out-of-order core widths (Table II defaults)."""

    rob_entries: int = 168
    fetch_width: int = 6
    issue_width: int = 8
    commit_width: int = 6


@dataclass(frozen=True)
class MalecParameters:
    """Options specific to the MALEC interface (Secs. IV and V)."""

    way_determination: str = "wt"
    wdu_entries: int = 16
    enable_feedback_update: bool = True
    merge_granularity: str = "subblock_pair"
    result_buses: int = 4
    input_buffer_capacity: int = 2
    merge_window: int = 3
    restrict_way_allocation: bool = True


@dataclass(frozen=True)
class SimulationConfig:
    """Complete description of one simulated configuration."""

    name: str
    interface: InterfaceKind
    cache: CacheParameters = CacheParameters()
    tlb: TLBParameters = TLBParameters()
    pipeline: PipelineParameters = PipelineParameters()
    malec_options: MalecParameters = MalecParameters()
    lq_entries: int = 40
    sb_entries: int = 24
    mb_entries: int = 4
    include_buffer_energy: bool = False
    seed: int = 0

    # ------------------------------------------------------------------
    # Factories for the configurations of the evaluation section
    # ------------------------------------------------------------------
    @classmethod
    def base_1ldst(cls, l1_hit_latency: int = 2, name: Optional[str] = None) -> "SimulationConfig":
        """Energy-oriented baseline (one load or store per cycle)."""
        label = name or ("Base1ldst" if l1_hit_latency == 2 else f"Base1ldst_{l1_hit_latency}cycleL1")
        return cls(
            name=label,
            interface=InterfaceKind.BASE_1LDST,
            cache=CacheParameters(l1_hit_latency=l1_hit_latency),
        )

    @classmethod
    def base_2ld1st(cls, l1_hit_latency: int = 2, name: Optional[str] = None) -> "SimulationConfig":
        """Performance-oriented baseline (two loads + one store per cycle)."""
        label = name or ("Base2ld1st" if l1_hit_latency == 2 else f"Base2ld1st_{l1_hit_latency}cycleL1")
        return cls(
            name=label,
            interface=InterfaceKind.BASE_2LD1ST,
            cache=CacheParameters(l1_hit_latency=l1_hit_latency),
        )

    @classmethod
    def malec(
        cls,
        l1_hit_latency: int = 2,
        name: Optional[str] = None,
        malec_options: MalecParameters = MalecParameters(),
    ) -> "SimulationConfig":
        """The proposed MALEC interface."""
        label = name or ("MALEC" if l1_hit_latency == 2 else f"MALEC_{l1_hit_latency}cycleL1")
        return cls(
            name=label,
            interface=InterfaceKind.MALEC,
            cache=CacheParameters(l1_hit_latency=l1_hit_latency),
            malec_options=malec_options,
        )

    @classmethod
    def figure4_suite(cls) -> list["SimulationConfig"]:
        """The five configurations plotted in Fig. 4 (left to right)."""
        return [
            cls.base_1ldst(),
            cls.base_2ld1st(l1_hit_latency=1),
            cls.base_2ld1st(),
            cls.malec(),
            cls.malec(l1_hit_latency=3),
        ]

    # ------------------------------------------------------------------
    # Derived descriptions
    # ------------------------------------------------------------------
    def with_name(self, name: str) -> "SimulationConfig":
        """Copy of this configuration under a different display name."""
        return replace(self, name=name)

    @property
    def l1_read_ports(self) -> int:
        """L1 read ports per bank (Table I: Base2ld1st adds one read port)."""
        return 2 if self.interface is InterfaceKind.BASE_2LD1ST else 1

    @property
    def tlb_ports(self) -> int:
        """uTLB/TLB ports (Table I: Base2ld1st has 1 rd/wt + 2 rd)."""
        return 3 if self.interface is InterfaceKind.BASE_2LD1ST else 1

    def energy_model_config(self) -> EnergyModelConfig:
        """Structural description consumed by the energy model."""
        is_malec = self.interface is InterfaceKind.MALEC
        uses_wt = is_malec and self.malec_options.way_determination == "wt"
        uses_wdu = is_malec and self.malec_options.way_determination == "wdu"
        return EnergyModelConfig(
            l1_ports=self.l1_read_ports,
            tlb_ports=self.tlb_ports,
            has_way_tables=uses_wt,
            wdu_entries=self.malec_options.wdu_entries if uses_wdu else 0,
            wdu_ports=self.malec_options.result_buses,
            include_buffers=self.include_buffer_energy,
            utlb_entries=self.tlb.utlb_entries,
            tlb_entries=self.tlb.tlb_entries,
            sb_entries=self.sb_entries,
            mb_entries=self.mb_entries,
            layout=self.cache.layout,
        )

    def table1_row(self) -> dict:
        """This configuration's row of Table I (ports and widths)."""
        if self.interface is InterfaceKind.BASE_1LDST:
            return {
                "configuration": self.name,
                "addr_comp_per_cycle": "1 ld/st",
                "utlb_tlb_ports": "1 rd/wt",
                "cache_ports": "1 rd/wt",
            }
        if self.interface is InterfaceKind.BASE_2LD1ST:
            return {
                "configuration": self.name,
                "addr_comp_per_cycle": "2 ld + 1 st",
                "utlb_tlb_ports": "1 rd/wt + 2 rd",
                "cache_ports": "1 rd/wt + 1 rd",
            }
        return {
            "configuration": self.name,
            "addr_comp_per_cycle": "1 ld + 2 ld/st",
            "utlb_tlb_ports": "1 rd/wt",
            "cache_ports": "1 rd/wt",
        }
