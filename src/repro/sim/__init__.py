"""Simulation driver: configuration, statistics and the top-level simulator.

The :class:`~repro.sim.simulator.Simulator` ties a workload trace, an
out-of-order memory pipeline, one of the L1 interface models and the energy
accounting together and produces a :class:`~repro.sim.simulator.SimulationResult`.
"""

from repro.stats import StatCounters
from repro.sim.config import (
    CacheParameters,
    InterfaceKind,
    PipelineParameters,
    SimulationConfig,
    TLBParameters,
)
from repro.sim.simulator import SimulationResult, Simulator, run_configuration

__all__ = [
    "StatCounters",
    "CacheParameters",
    "InterfaceKind",
    "PipelineParameters",
    "SimulationConfig",
    "TLBParameters",
    "SimulationResult",
    "Simulator",
    "run_configuration",
]
