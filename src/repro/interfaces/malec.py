"""MALEC: the Multiple Access Low Energy Cache interface (Sec. IV and V).

The interface deliberately restricts the L1 data subsystem to one *page* per
cycle, which allows every structure (uTLB, TLB, cache banks) to stay
single-ported.  Performance is recovered by:

* sharing the single address translation of a cycle among every access to
  that page (the Input Buffer groups them),
* distributing the group across the four independent cache banks and merging
  loads that touch the same cache line / sub-block pair (Arbitration Unit),
* letting a group contain up to four loads plus one evicted merge-buffer
  entry per cycle (bounded by the four result buses).

Energy is further reduced by Page-Based Way Determination: the way-table
entry returned alongside the translation supplies a validated way for most
lines, so the corresponding bank accesses bypass the tag arrays and read a
single data array ("reduced access").  A line-based WDU can be substituted
for the way tables to reproduce the comparison of Sec. VI-C, or way
determination can be disabled entirely.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.buffers.merge_buffer import MergeBufferEntry
from repro.core.arbitration import ArbitrationUnit, BankRequest
from repro.core.input_buffer import InputBuffer
from repro.core.request import AccessKind, MemoryAccessRequest
from repro.core.way_table import WayTableHierarchy
from repro.core.wdu import WayDeterminationUnit
from repro.interfaces.base import (
    BaseL1Interface,
    CompletedAccess,
    PendingWriteback,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatCounters
from repro.tlb.tlb import TLBHierarchy

#: way-determination schemes supported by the MALEC interface
WAY_DETERMINATION_SCHEMES = ("wt", "wdu", "none")


class MalecInterface(BaseL1Interface):
    """Page-grouped, way-determined L1 interface (the paper's proposal)."""

    name = "MALEC"

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        translation: TLBHierarchy,
        stats: Optional[StatCounters] = None,
        way_determination: str = "wt",
        wdu_entries: int = 16,
        enable_feedback_update: bool = True,
        merge_granularity: str = "subblock_pair",
        result_buses: int = 4,
        input_buffer_capacity: int = 2,
        new_loads_per_cycle: int = 4,
        merge_window: int = 3,
        dedicated_load_slots: int = 1,
        flexible_slots: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(
            hierarchy,
            translation,
            stats=stats,
            load_slots=dedicated_load_slots,
            store_slots=0,
            flexible_slots=flexible_slots,
            **kwargs,
        )
        if way_determination not in WAY_DETERMINATION_SCHEMES:
            raise ValueError(
                f"way_determination {way_determination!r} not in {WAY_DETERMINATION_SCHEMES}"
            )
        self.way_determination = way_determination
        self.input_buffer = InputBuffer(
            held_capacity=input_buffer_capacity,
            new_loads_per_cycle=new_loads_per_cycle,
            stats=self.stats,
        )
        self.arbitration = ArbitrationUnit(
            layout=self.layout,
            result_buses=result_buses,
            merge_window=merge_window,
            merge_granularity=merge_granularity,
            stats=self.stats,
        )
        self.way_tables: Optional[WayTableHierarchy] = None
        self.wdu: Optional[WayDeterminationUnit] = None
        if way_determination == "wt":
            self.way_tables = WayTableHierarchy(
                translation,
                layout=self.layout,
                stats=self.stats,
                enable_feedback_update=enable_feedback_update,
            )
            self.way_tables.attach_to_cache(hierarchy.l1)
        elif way_determination == "wdu":
            self.wdu = WayDeterminationUnit(
                entries=wdu_entries,
                lookup_ports=result_buses,
                layout=self.layout,
                stats=self.stats,
            )
            self.wdu.attach_to_cache(hierarchy.l1)
        #: MBEs waiting for the Input Buffer's single MBE slot
        self._mbe_backlog: Deque[MergeBufferEntry] = deque()
        # Per-cycle counters resolved to integer slots once (hot path).
        self._h_group_cycles = self.stats.handle("malec.group_cycles")
        self._h_group_loads = self.stats.handle("malec.group_loads")
        self._h_loads_merged = self.stats.handle("interface.loads_merged")
        self._h_way_lookup = self.stats.handle("malec.way_lookup")
        self._h_way_known = self.stats.handle("malec.way_known")
        self._h_reduced_access = self.stats.handle("malec.reduced_access")
        # Fixed way-prediction accounting patterns (one bump_many per access).
        self._combo_way_unknown = ((self._h_way_lookup, 1),)
        self._combo_way_known = ((self._h_way_lookup, 1), (self._h_way_known, 1))
        self._combo_way_reduced = (
            (self._h_way_lookup, 1),
            (self._h_way_known, 1),
            (self._h_reduced_access, 1),
        )

    # ------------------------------------------------------------------
    # Back-pressure and queuing
    # ------------------------------------------------------------------
    def _can_accept_load_extra(self) -> bool:
        return self.input_buffer.can_accept_load()

    def can_accept_load(self) -> bool:
        # Inline of the base check + input_buffer.can_accept_load(): this
        # runs once per load issue attempt, so the call chain is flattened.
        lq = self.load_queue
        if len(lq._entries) >= lq.entries:
            return False
        ib = self.input_buffer
        if len(ib._new) >= ib.new_loads_per_cycle:
            return False
        return len(ib._held) < ib.held_capacity + 1

    def _loads_quiescent(self) -> bool:
        # An empty-interface tick is a pure no-op (see _service_cycle), so
        # the event-driven pipeline may skip ticking a quiescent MALEC
        # entirely — mid-run or across a fast-forwarded stall — with every
        # statistic staying bit-identical.
        return self.input_buffer.empty and not self._mbe_backlog

    def _enqueue_load(self, tag, address, size, cycle) -> None:
        request = MemoryAccessRequest(
            kind=AccessKind.LOAD,
            virtual_address=address,
            size=size,
            arrival_cycle=cycle,
            tag=tag,
            layout=self.layout,
        )
        self.input_buffer.add_load(request)

    def _queue_writeback(self, mbe: MergeBufferEntry) -> None:
        # Unlike the baselines, evicted MBEs travel through the Input Buffer
        # so their cache write can share a page group's translation.
        self._mbe_backlog.append(mbe)
        self.stats.bump(self._h_mbe_queued)

    def _feed_mbe_slot(self, cycle: int) -> None:
        """Move one backlogged MBE into the Input Buffer's MBE slot."""
        if not self._mbe_backlog or not self.input_buffer.can_accept_mbe():
            return
        mbe = self._mbe_backlog.popleft()
        request = MemoryAccessRequest(
            kind=AccessKind.MBE,
            virtual_address=mbe.line_address,
            size=self.layout.line_bytes,
            arrival_cycle=cycle,
            tag=None,
            layout=self.layout,
        )
        self.input_buffer.add_mbe(request)

    # ------------------------------------------------------------------
    # Per-cycle servicing
    # ------------------------------------------------------------------
    def _service_cycle(self, cycle: int) -> List[CompletedAccess]:
        completions: List[CompletedAccess] = []
        if not self._mbe_backlog and self.input_buffer.empty:
            # Nothing waiting anywhere: a true no-op.  (end_cycle() on an
            # empty buffer would only add zero to the held-loads counter;
            # not calling it keeps the quiescent tick side-effect free, which
            # is what lets the event-driven pipeline skip it altogether.)
            return completions
        self._feed_mbe_slot(cycle)
        group = self.input_buffer.select_group()
        if group is None:
            self.input_buffer.end_cycle()
            return completions

        # One translation per cycle, shared by the whole page group.
        physical_page, translation_latency = self.translation.translate_page_pair(
            group.virtual_page
        )
        way_entry = None
        if self.way_tables is not None:
            way_entry = self.way_tables.predict_page(group.virtual_page)

        result = self.arbitration.arbitrate(group, way_entry)

        if result.serviced_loads:
            # The split SB/MB lookup structures compare the shared page id
            # once per cycle; the narrow offset segments are charged per load.
            self.store_buffer.charge_shared_page_lookup()
            self.merge_buffer.charge_shared_page_lookup()

        for bank_request in result.bank_requests:
            completions.extend(
                self._service_bank_request(
                    bank_request, physical_page, translation_latency, cycle
                )
            )

        self.input_buffer.retire(result.serviced)
        self.input_buffer.end_cycle()
        self.stats.bump(self._h_group_cycles)
        self.stats.bump(self._h_group_loads, len(result.serviced_loads))
        return completions

    def _service_bank_request(
        self,
        bank_request: BankRequest,
        physical_page: int,
        translation_latency: int,
        cycle: int,
    ) -> List[CompletedAccess]:
        """Perform one bank access and return completions of its loads."""
        completions: List[CompletedAccess] = []
        primary = bank_request.primary
        primary.attach_translation(physical_page)
        way_hint = bank_request.way_hint

        if self.wdu is not None:
            prediction = self.wdu.predict(primary.physical_address)
            if prediction.known:
                way_hint = prediction.way

        if bank_request.is_write:
            reduced = self.hierarchy.l1.store_parts(
                primary.physical_address, way_hint=way_hint
            )[3]
            self.stats.bump(self._h_mbe_written)
            self._account_way_prediction(way_hint, reduced)
            return completions

        # Loads: every serviced load (primary + merged) searches SB/MB with
        # the split structures and shares the single bank access.  (The
        # primary's translation is already attached above.)
        merged_requests = bank_request.merged
        self._forwarding_lookups(primary.virtual_address, primary.size, split=True)
        for request in merged_requests:
            request.attach_translation(physical_page)
            self._forwarding_lookups(request.virtual_address, request.size, split=True)

        hit, way, latency, reduced, _, _ = self.hierarchy.l1.load_parts(
            primary.physical_address, way_hint=way_hint
        )
        self.stats.bump(self._h_load_accesses)
        self.stats.bump(self._h_loads_merged, len(merged_requests))
        self._account_way_prediction(way_hint, reduced)

        if way_hint is None and hit:
            # Feedback path: conventional access hit although the prediction
            # was unknown — update the uWT via the last-entry register, or
            # train the WDU.
            if self.way_tables is not None:
                self.way_tables.feedback_conventional_hit(
                    primary.physical_address, way
                )
            if self.wdu is not None and way is not None:
                self.wdu.record(primary.physical_address, way)

        ready = cycle + translation_latency + latency
        if primary.tag is not None:
            completions.append((primary.tag, ready))
        for request in merged_requests:
            if request.tag is not None:
                completions.append((request.tag, ready))
        return completions

    def _account_way_prediction(self, way_hint: Optional[int], reduced: bool) -> None:
        """Coverage bookkeeping: each bank access is one prediction opportunity."""
        if self.way_determination == "none":
            return
        if way_hint is None:
            self.stats.bump_many(self._combo_way_unknown)
        elif reduced:
            self.stats.bump_many(self._combo_way_reduced)
        else:
            self.stats.bump_many(self._combo_way_known)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @property
    def way_coverage(self) -> float:
        """Fraction of L1 accesses serviced with a known, valid way."""
        return self.stats.ratio("malec.way_known", "malec.way_lookup")

    @property
    def merged_load_fraction(self) -> float:
        """Fraction of serviced loads that shared another load's bank access."""
        merged = self.stats.get("interface.loads_merged")
        accesses = self.stats.get("interface.load_accesses")
        total = merged + accesses
        return merged / total if total else 0.0

    @property
    def pending_work(self) -> bool:
        """True when loads, MBEs or write-backs are still in flight."""
        return (
            not self.input_buffer.empty
            or bool(self._mbe_backlog)
            or bool(self._pending_writebacks)
        )

    def finalize(self, cycle: int) -> None:
        """Drain the Input Buffer's MBE backlog in addition to the base drain."""
        # An MBE may still sit in the Input Buffer's single MBE slot.
        waiting = self.input_buffer.take_mbe()
        if waiting is not None:
            self._pending_writebacks.append(
                PendingWriteback(virtual_line_address=waiting.virtual_address)
            )
        # Convert backlogged MBEs into ordinary write-backs first.
        while self._mbe_backlog:
            mbe = self._mbe_backlog.popleft()
            self._pending_writebacks.append(
                PendingWriteback(virtual_line_address=mbe.line_address)
            )
        # Any loads still sitting in the Input Buffer have already been
        # reported complete or the pipeline would not have committed them;
        # by construction the buffer is empty of loads here.
        super().finalize(cycle)
        # The base drain routes freshly evicted MBEs back through our
        # overridden _queue_writeback (i.e. into the backlog); flush them too.
        while self._mbe_backlog:
            mbe = self._mbe_backlog.popleft()
            self._writeback_to_cache(
                PendingWriteback(virtual_line_address=mbe.line_address)
            )
