"""L1 data-cache interface models (Table I of the paper).

Three interfaces between the out-of-order core and the L1 data cache are
modelled, mirroring Table I:

=============  =====================  =================  ==============
configuration  addr. comp. per cycle  uTLB/TLB ports     cache ports
=============  =====================  =================  ==============
Base1ldst      1 ld *or* st           1 rd/wt            1 rd/wt
Base2ld1st     2 ld + 1 st            1 rd/wt + 2 rd     1 rd/wt + 1 rd
MALEC          1 ld + 2 ld/st         1 rd/wt            1 rd/wt
=============  =====================  =================  ==============

``Base1ldst`` is the energy-oriented baseline limited to a single memory
access per cycle.  ``Base2ld1st`` is the performance-oriented baseline that
adds physical multi-porting on top of cache banking (as in Sandy Bridge /
Bulldozer class designs).  ``MALEC`` keeps single-ported structures and
instead groups accesses by page (Sec. IV) and determines ways through page
way tables (Sec. V).
"""

from repro.interfaces.base import BaseL1Interface, CompletedAccess
from repro.interfaces.base_1ldst import BaselineSingleInterface
from repro.interfaces.base_2ld1st import BaselineDualLoadInterface
from repro.interfaces.malec import MalecInterface

__all__ = [
    "BaseL1Interface",
    "CompletedAccess",
    "BaselineSingleInterface",
    "BaselineDualLoadInterface",
    "MalecInterface",
]
