"""Base1ldst: the energy-oriented single-access baseline (Table I).

One load *or* one store may finish address computation per cycle, the
uTLB/TLB has a single read/write port and the cache interface performs at
most one access per cycle (the single rd/wt port is shared between demand
loads and merge-buffer write-backs).  All structures are single-ported, which
is what makes this configuration the energy reference of Fig. 4b.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.interfaces.base import (
    BaseL1Interface,
    CompletedAccess,
    PendingLoad,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatCounters
from repro.tlb.tlb import TLBHierarchy


class BaselineSingleInterface(BaseL1Interface):
    """One memory access per cycle, single-ported everywhere."""

    name = "Base1ldst"

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        translation: TLBHierarchy,
        stats: Optional[StatCounters] = None,
        **kwargs,
    ) -> None:
        super().__init__(
            hierarchy,
            translation,
            stats=stats,
            load_slots=0,
            store_slots=0,
            flexible_slots=1,
            **kwargs,
        )
        self._pending_loads: Deque[PendingLoad] = deque()

    # ------------------------------------------------------------------
    def _can_accept_load_extra(self) -> bool:
        # A small queue in front of the single cache port; deeper queuing
        # would only hide the structural hazard the paper wants to expose.
        return len(self._pending_loads) < 4

    def can_accept_load(self) -> bool:
        # Inline of the base check + the pending-queue bound (hot path).
        lq = self.load_queue
        return len(lq._entries) < lq.entries and len(self._pending_loads) < 4

    def _enqueue_load(self, tag, address, size, cycle) -> None:
        self._pending_loads.append(
            PendingLoad(tag=tag, virtual_address=address, size=size, submit_cycle=cycle)
        )

    def _loads_quiescent(self) -> bool:
        return not self._pending_loads

    def _on_store_submitted(self, address: int, size: int, cycle: int) -> None:
        # The baseline translates every memory reference individually; the
        # store's translation shares the cycle's single TLB port with its
        # address computation.
        self.translation.translate_probe(address)

    # ------------------------------------------------------------------
    def _service_cycle(self, cycle: int) -> List[CompletedAccess]:
        """Use the single cache port: demand loads first, then write-backs."""
        completions: List[CompletedAccess] = []
        if self._pending_loads:
            load = self._pending_loads.popleft()
            address = load.virtual_address
            physical, translation_latency = self.translation.translate_pair(address)
            self._forwarding_lookups(address, load.size, split=False)
            latency = self.hierarchy.l1.load_parts(physical)[2]
            completions.append((load.tag, cycle + translation_latency + latency))
            self.stats.bump(self._h_load_accesses)
        elif self._pending_writebacks:
            self._writeback_to_cache(self._pending_writebacks.popleft())
        return completions
