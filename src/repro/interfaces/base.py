"""Shared machinery of the L1 interface models.

Every interface owns the structures that are identical across configurations
(load queue, store buffer, merge buffer — Table I keeps their sizes and port
counts equal for fairness), performs the store commit path (SB → MB → cache)
and tracks per-cycle address-computation slot usage.  Subclasses implement
the actual per-cycle servicing of loads and merge-buffer write-backs in
:meth:`BaseL1Interface._service_cycle`.

The pipeline talks to interfaces exclusively through the methods documented
in :mod:`repro.cpu.pipeline`; the simulator additionally reads the interface's
statistics and asks for its energy-model configuration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.buffers.load_queue import LoadQueue
from repro.buffers.merge_buffer import MergeBuffer, MergeBufferEntry
from repro.buffers.store_buffer import StoreBuffer
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatCounters
from repro.tlb.tlb import TLBHierarchy

#: (tag, data_ready_cycle) notification returned to the pipeline
CompletedAccess = Tuple[Any, int]


class PendingLoad:
    """A load waiting for (or undergoing) its cache access (slotted)."""

    __slots__ = ("tag", "virtual_address", "size", "submit_cycle")

    def __init__(self, tag: Any, virtual_address: int, size: int, submit_cycle: int) -> None:
        self.tag = tag
        self.virtual_address = virtual_address
        self.size = size
        self.submit_cycle = submit_cycle


class PendingWriteback:
    """A merge-buffer entry waiting for a cache write slot (slotted)."""

    __slots__ = ("virtual_line_address", "physical_line_address")

    def __init__(
        self,
        virtual_line_address: int,
        physical_line_address: Optional[int] = None,
    ) -> None:
        self.virtual_line_address = virtual_line_address
        self.physical_line_address = physical_line_address


class BaseL1Interface(ABC):
    """Common state and behaviour of the three interface models.

    Parameters
    ----------
    hierarchy:
        The L1/L2/DRAM hierarchy the interface accesses.
    translation:
        The uTLB/TLB hierarchy used for address translation.
    stats:
        Shared statistics collection (usually the hierarchy's).
    load_slots / store_slots / flexible_slots:
        Per-cycle address-computation slots: dedicated load slots, dedicated
        store slots and slots usable by either kind (Table I).
    """

    name = "base"

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        translation: TLBHierarchy,
        stats: Optional[StatCounters] = None,
        load_slots: int = 1,
        store_slots: int = 0,
        flexible_slots: int = 0,
        lq_entries: int = 40,
        sb_entries: int = 24,
        mb_entries: int = 4,
        layout: AddressLayout = DEFAULT_LAYOUT,
    ) -> None:
        self.hierarchy = hierarchy
        self.translation = translation
        self.layout = layout
        self.stats = stats if stats is not None else hierarchy.stats
        self.load_slots = load_slots
        self.store_slots = store_slots
        self.flexible_slots = flexible_slots
        self.load_queue = LoadQueue(lq_entries, stats=self.stats)
        self.store_buffer = StoreBuffer(sb_entries, layout=layout, stats=self.stats)
        self.merge_buffer = MergeBuffer(mb_entries, layout=layout, stats=self.stats)
        self._pending_writebacks: Deque[PendingWriteback] = deque()
        self._cycle_loads_used = 0
        self._cycle_stores_used = 0
        self._cycle_flex_used = 0
        self._current_cycle = 0
        # Per-access counters resolved to integer slots once (hot path).
        self._h_loads_submitted = self.stats.handle("interface.loads_submitted")
        self._h_stores_submitted = self.stats.handle("interface.stores_submitted")
        self._h_mbe_queued = self.stats.handle("interface.mbe_queued")
        self._h_mbe_written = self.stats.handle("interface.mbe_written")
        self._h_load_accesses = self.stats.handle("interface.load_accesses")
        # Fused per-load submission charge (interface + load queue counters).
        self._combo_load_submit = (
            (self._h_loads_submitted, 1),
            (self.load_queue._h_allocate, 1),
        )
        # Fused SB+MB lookup charges for the per-load forwarding search.
        self._combo_fwd_full = (
            (self.store_buffer._h_lookup_full, 1),
            (self.merge_buffer._h_lookup_full, 1),
        )
        self._combo_fwd_split = (
            (self.store_buffer._h_lookup_offset, 1),
            (self.merge_buffer._h_lookup_offset, 1),
        )

    # ------------------------------------------------------------------
    # Per-cycle slot management (address computation units, Table I)
    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        """Reset per-cycle slot usage; called by the pipeline first thing."""
        self._current_cycle = cycle
        self._cycle_loads_used = 0
        self._cycle_stores_used = 0
        self._cycle_flex_used = 0

    def reserve_load_slot(self) -> bool:
        """Claim an address-computation slot for a load this cycle."""
        if self._cycle_loads_used < self.load_slots:
            self._cycle_loads_used += 1
            return True
        if self._cycle_flex_used < self.flexible_slots:
            self._cycle_flex_used += 1
            return True
        return False

    def reserve_store_slot(self) -> bool:
        """Claim an address-computation slot for a store this cycle."""
        if self._cycle_stores_used < self.store_slots:
            self._cycle_stores_used += 1
            return True
        if self._cycle_flex_used < self.flexible_slots:
            self._cycle_flex_used += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Acceptance checks (structural back-pressure)
    # ------------------------------------------------------------------
    def can_accept_load(self) -> bool:
        """True when another load may be submitted this cycle."""
        return not self.load_queue.full and self._can_accept_load_extra()

    def can_accept_store(self) -> bool:
        """True when another store may be submitted this cycle."""
        return not self.store_buffer.full

    def _can_accept_load_extra(self) -> bool:
        """Subclass hook for additional back-pressure (e.g. Input Buffer full)."""
        return True

    # ------------------------------------------------------------------
    # Submission and commit
    # ------------------------------------------------------------------
    def submit_load(self, tag: Any, address: int, size: int, cycle: int) -> None:
        """Accept a load whose address computation finished this cycle."""
        self.load_queue.allocate_issued(tag, address, cycle, count=False)
        self.stats.bump_many(self._combo_load_submit)
        self._enqueue_load(tag, address, size, cycle)

    def submit_store(self, tag: Any, address: int, size: int, cycle: int) -> None:
        """Accept a store whose address computation finished this cycle."""
        self.store_buffer.insert(tag, address, size, cycle)
        self.stats.bump(self._h_stores_submitted)
        self._on_store_submitted(address, size, cycle)

    def commit_store(self, tag: Any, cycle: int) -> None:
        """The pipeline committed a store: it may now leave the store buffer."""
        self.store_buffer.mark_committed(tag)

    # ------------------------------------------------------------------
    # Store drain path (SB -> MB -> pending write-back)
    # ------------------------------------------------------------------
    def _drain_committed_stores(self, cycle: int, max_stores: int = 1) -> None:
        """Move committed stores into the merge buffer (Fig. 2b right path)."""
        for _ in range(max_stores):
            entry = self.store_buffer.pop_committed()
            if entry is None:
                return
            evicted = self.merge_buffer.commit_store(entry.virtual_address, entry.size, cycle)
            if evicted is not None:
                self._queue_writeback(evicted)

    def _queue_writeback(self, mbe: MergeBufferEntry) -> None:
        """Queue an evicted merge-buffer entry for its cache write."""
        self._pending_writebacks.append(
            PendingWriteback(virtual_line_address=mbe.line_address)
        )
        self.stats.bump(self._h_mbe_queued)

    # ------------------------------------------------------------------
    # Per-cycle servicing
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> List[CompletedAccess]:
        """Advance the interface by one cycle; return load completions."""
        if self.store_buffer.committed_count:
            self._drain_committed_stores(cycle)
        completions = self._service_cycle(cycle)
        if completions:
            complete_release = self.load_queue.complete_release
            for tag, ready in completions:
                complete_release(tag, ready)
        return completions

    # ------------------------------------------------------------------
    # Quiescence (pipeline idle fast-forward)
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """True when :meth:`tick` would be a pure no-op this and every
        following cycle until new work arrives.

        This is the interface's *next-activity* signal for the event-driven
        pipeline: it aggregates every component the interface owns (load
        queue, store buffer, merge buffer, pending write-backs, and — in the
        MALEC subclass — the input buffer and MBE backlog) into one "has an
        event scheduled" bit.  A non-quiescent interface has activity every
        cycle, so its next event is always the next cycle; a quiescent one
        has no event scheduled at all, and the pipeline neither ticks it nor
        counts it against clock jumps until a submit or a store commit
        re-arms it.  The PR-2 idle fast-forward (jumping a fully stalled
        machine to the next completion) falls out as the degenerate case.
        """
        return (
            not self._pending_writebacks
            and self.store_buffer.committed_count == 0
            and self._loads_quiescent()
        )

    def _loads_quiescent(self) -> bool:
        """Subclass hook: True when no load is queued before the cache."""
        return True

    @abstractmethod
    def _enqueue_load(self, tag: Any, address: int, size: int, cycle: int) -> None:
        """Store a submitted load until it can access the cache.

        Receives the raw submission fields so each interface builds exactly
        the queue record it needs (a :class:`PendingLoad` for the baselines,
        a :class:`~repro.core.request.MemoryAccessRequest` for MALEC) without
        an intermediate allocation.
        """

    def _on_store_submitted(self, address: int, size: int, cycle: int) -> None:
        """Subclass hook invoked when a store enters the store buffer."""

    @abstractmethod
    def _service_cycle(self, cycle: int) -> List[CompletedAccess]:
        """Perform this cycle's cache accesses; return load completions."""

    # ------------------------------------------------------------------
    # Shared helpers used by the concrete interfaces
    # ------------------------------------------------------------------
    def _translate(self, virtual_address: int):
        """Translate one address through the uTLB/TLB (charging lookups)."""
        return self.translation.translate(virtual_address)

    def _forwarding_lookups(self, virtual_address: int, size: int, split: bool) -> None:
        """Search SB and MB for store-to-load forwarding (energy bookkeeping).

        All configurations perform these searches for every load; MALEC uses
        the split page/offset structures.  Forwarding hits are counted but the
        load still accesses the cache, keeping the cache-access counts
        comparable across configurations (the paper excludes SB/MB energy).

        The two buffer scans are inlined here (same counters as the buffers'
        own ``probe``/``lookup`` methods, one fused charge bump): this runs
        once per serviced load, so per-call overhead matters.
        """
        stats = self.stats
        store_buffer = self.store_buffer
        merge_buffer = self.merge_buffer
        stats.bump_many(self._combo_fwd_split if split else self._combo_fwd_full)
        end = virtual_address + size
        for entry in reversed(store_buffer._entries):
            start = entry.virtual_address
            if start < end and virtual_address < start + entry.size:
                stats.bump(store_buffer._h_forward_hit)
                break
        mb_entries = merge_buffer._entries
        if mb_entries:
            line_address = virtual_address & ~(self.layout._line_offset_mask)
            for entry in mb_entries:
                if entry.line_address == line_address:
                    stats.bump(merge_buffer._h_forward_hit)
                    break

    def _writeback_to_cache(self, writeback: PendingWriteback, way_hint: Optional[int] = None) -> None:
        """Perform the cache write of an evicted merge-buffer entry."""
        if writeback.physical_line_address is None:
            physical, _ = self.translation.translate_pair(writeback.virtual_line_address)
            writeback.physical_line_address = self.layout.line_address(physical)
        self.hierarchy.l1.store_parts(writeback.physical_line_address, way_hint=way_hint)
        self.stats.bump(self._h_mbe_written)

    # ------------------------------------------------------------------
    # End-of-run drain
    # ------------------------------------------------------------------
    def finalize(self, cycle: int) -> None:
        """Flush remaining committed stores and merge-buffer entries.

        Called once by the pipeline after the last instruction commits so
        that every configuration accounts for the same amount of store
        traffic; the flush has no timing effect.
        """
        # Drain the store buffer completely.
        while True:
            entry = self.store_buffer.pop_committed()
            if entry is None:
                break
            evicted = self.merge_buffer.commit_store(entry.virtual_address, entry.size, cycle)
            if evicted is not None:
                self._queue_writeback(evicted)
        for mbe in self.merge_buffer.drain():
            self._queue_writeback(mbe)
        while self._pending_writebacks:
            self._writeback_to_cache(self._pending_writebacks.popleft())

    # ------------------------------------------------------------------
    @property
    def pending_work(self) -> bool:
        """True when loads or write-backs are still waiting (used in tests)."""
        return bool(self._pending_writebacks)
