"""Base2ld1st: the performance-oriented multi-ported baseline (Table I).

Up to two loads and one store finish address computation per cycle.  The
uTLB/TLB provides one read/write plus two read ports so every access is
translated in its own cycle, and each L1 bank carries one read/write plus one
read port, so per cycle a bank can service up to two reads or one read and
one write.  This mirrors the hybrid of banking and physical multi-porting
used by Sandy Bridge / Bulldozer class cores (Sec. II); the extra ports are
exactly what drives its higher dynamic and leakage energy in Fig. 4b.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.interfaces.base import (
    BaseL1Interface,
    CompletedAccess,
    PendingLoad,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatCounters
from repro.tlb.tlb import TLBHierarchy


class BaselineDualLoadInterface(BaseL1Interface):
    """Two loads plus one store per cycle via physical multi-porting."""

    name = "Base2ld1st"

    #: per-cycle limits of the dual-ported banks
    _MAX_ACCESSES_PER_BANK = 2
    _MAX_WRITES_PER_BANK = 1

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        translation: TLBHierarchy,
        stats: Optional[StatCounters] = None,
        loads_per_cycle: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(
            hierarchy,
            translation,
            stats=stats,
            load_slots=loads_per_cycle,
            store_slots=1,
            flexible_slots=0,
            **kwargs,
        )
        self.loads_per_cycle = loads_per_cycle
        self._pending_loads: Deque[PendingLoad] = deque()
        self._h_bank_conflict = self.stats.handle("interface.bank_conflict")

    # ------------------------------------------------------------------
    def _can_accept_load_extra(self) -> bool:
        return len(self._pending_loads) < 2 * self.loads_per_cycle

    def can_accept_load(self) -> bool:
        # Inline of the base check + the pending-queue bound (hot path).
        lq = self.load_queue
        return (
            len(lq._entries) < lq.entries
            and len(self._pending_loads) < 2 * self.loads_per_cycle
        )

    def _enqueue_load(self, tag, address, size, cycle) -> None:
        self._pending_loads.append(
            PendingLoad(tag=tag, virtual_address=address, size=size, submit_cycle=cycle)
        )

    def _loads_quiescent(self) -> bool:
        return not self._pending_loads

    def _on_store_submitted(self, address: int, size: int, cycle: int) -> None:
        # Each memory reference is translated individually through one of the
        # three TLB ports.
        self.translation.translate_probe(address)

    # ------------------------------------------------------------------
    def _service_cycle(self, cycle: int) -> List[CompletedAccess]:
        """Service up to two loads and one write-back, within bank port limits."""
        completions: List[CompletedAccess] = []
        pending_loads = self._pending_loads
        if not pending_loads and not self._pending_writebacks:
            return completions
        bank_accesses: Dict[int, int] = {}
        bank_writes: Dict[int, int] = {}
        stats = self.stats
        bank_index = self.layout.bank_index
        translate_pair = self.translation.translate_pair
        load_parts = self.hierarchy.l1.load_parts

        # Demand loads: oldest first, up to the number of read ports.
        serviced = 0
        deferred: List[PendingLoad] = []
        while pending_loads and serviced < self.loads_per_cycle:
            load = pending_loads.popleft()
            address = load.virtual_address
            bank = bank_index(address)
            if bank_accesses.get(bank, 0) >= self._MAX_ACCESSES_PER_BANK:
                deferred.append(load)
                stats.bump(self._h_bank_conflict)
                continue
            physical, translation_latency = translate_pair(address)
            self._forwarding_lookups(address, load.size, split=False)
            latency = load_parts(physical)[2]
            bank_accesses[bank] = bank_accesses.get(bank, 0) + 1
            completions.append((load.tag, cycle + translation_latency + latency))
            stats.bump(self._h_load_accesses)
            serviced += 1
        for load in reversed(deferred):
            pending_loads.appendleft(load)

        # One merge-buffer write-back through the read/write port.
        if self._pending_writebacks:
            writeback = self._pending_writebacks[0]
            if writeback.physical_line_address is None:
                physical, _ = self.translation.translate_pair(
                    writeback.virtual_line_address
                )
                writeback.physical_line_address = self.layout.line_address(physical)
            bank = self.layout.bank_index(writeback.physical_line_address)
            if (
                bank_writes.get(bank, 0) < self._MAX_WRITES_PER_BANK
                and bank_accesses.get(bank, 0) < self._MAX_ACCESSES_PER_BANK
            ):
                self._pending_writebacks.popleft()
                self.hierarchy.l1.store(writeback.physical_line_address)
                self.stats.bump(self._h_mbe_written)
                bank_accesses[bank] = bank_accesses.get(bank, 0) + 1
                bank_writes[bank] = bank_writes.get(bank, 0) + 1

        return completions
