"""The programmatic run-configuration surface: :class:`RunOptions`.

Historically, configuring a simulation meant a mix of loose keyword
arguments (``frontend=``, ``kernel=``, ``collector=``, ``jobs=``,
``store=``) and process-wide environment variables
(``REPRO_TRACE_FRONTEND``, ``REPRO_SIM_KERNEL``) consulted at scattered
call sites.  :class:`RunOptions` replaces that sprawl with one frozen
dataclass that is the single way to configure
:meth:`repro.sim.simulator.Simulator.run`,
:func:`repro.sim.simulator.run_configuration` and
:class:`repro.campaign.executor.ParallelExecutor`::

    from repro.api import RunOptions
    from repro.campaign import ParallelExecutor

    options = RunOptions(kernel="generic", jobs=4, store="sqlite:results.db")
    ParallelExecutor(options=options).run(spec)

The old spellings keep working as **deprecated fallbacks** that resolve
into a ``RunOptions``:

* loose kwargs are accepted alongside (but not mixed with) ``options=``;
* the environment variables are consulted exactly once, in
  :meth:`RunOptions.from_env`, and emit a :class:`DeprecationWarning`
  when they actually supply a value.

Every field defaults to ``None`` meaning "the built-in default"
(``columnar`` frontend, ``specialized`` kernel, ``event`` scheduler, no
collector, serial execution, no persistence), so ``RunOptions()`` is
always a valid, fully-specified run.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, replace
from typing import Any, Optional

__all__ = ["RunOptions", "env_fallback"]


def env_fallback(var: str) -> Optional[str]:
    """The deprecated environment override of ``var``, or ``None``.

    Returns the stripped value when the variable is set and non-blank —
    and emits the one :class:`DeprecationWarning` that marks every
    remaining environment read in the codebase.  All legacy call sites
    (:func:`repro.workloads.columnar.resolve_frontend`,
    :func:`repro.sim.kernels.resolve_kernel`) funnel through here, so the
    environment is consulted in exactly one place.
    """
    value = os.environ.get(var)
    if value is None or not value.strip():
        return None
    warnings.warn(
        f"configuring runs through the {var} environment variable is "
        "deprecated; pass repro.api.RunOptions (or an explicit frontend=/"
        "kernel= argument) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return value.strip()


@dataclass(frozen=True)
class RunOptions:
    """Everything that configures a simulation run, in one object.

    ``None`` fields mean "use the built-in default"; the ``resolved_*``
    accessors apply defaults and validate names, raising the same
    ``ValueError`` a bad explicit argument always raised.
    """

    #: trace frontend: ``"columnar"`` (default) or ``"object"``
    frontend: Optional[str] = None
    #: hot-loop kernel: ``"specialized"`` (default) or ``"generic"``
    kernel: Optional[str] = None
    #: pipeline scheduler: ``"event"`` (default) or ``"cycle"``
    scheduler: Optional[str] = None
    #: optional :class:`repro.obs.collector.RunCollector` (forces the
    #: generic kernel; observation is strictly additive)
    collector: Any = None
    #: worker processes for campaign execution (``None`` = serial)
    jobs: Optional[int] = None
    #: result store: a store URL (``json:dir`` / ``sqlite:db``), a bare
    #: directory path, a live ``ResultStore``, or ``None`` (no persistence)
    store: Any = None

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, **fields: Any) -> "RunOptions":
        """Build options, filling unset frontend/kernel from the (deprecated)
        environment variables — the only sanctioned environment read."""
        options = cls(**fields)
        if options.frontend is None:
            from repro.workloads.columnar import FRONTEND_ENV

            value = env_fallback(FRONTEND_ENV)
            if value is not None:
                options = replace(options, frontend=value.lower())
        if options.kernel is None:
            from repro.sim.kernels import KERNEL_ENV

            value = env_fallback(KERNEL_ENV)
            if value is not None:
                options = replace(options, kernel=value.lower())
        return options

    # ------------------------------------------------------------------
    def resolved_frontend(self) -> str:
        """The effective trace frontend name (validated)."""
        from repro.workloads.columnar import resolve_frontend

        return resolve_frontend(self.frontend)

    def resolved_kernel(self) -> str:
        """The effective kernel name (validated)."""
        from repro.sim.kernels import resolve_kernel

        return resolve_kernel(self.kernel)

    def resolved_scheduler(self) -> str:
        """The effective pipeline scheduler name (validated)."""
        from repro.cpu.pipeline import SCHEDULERS

        choice = self.scheduler if self.scheduler is not None else SCHEDULERS[0]
        if choice not in SCHEDULERS:
            raise ValueError(f"scheduler {choice!r} not in {SCHEDULERS}")
        return choice

    def open_store(self):
        """The live :class:`~repro.campaign.store.ResultStore` this run
        persists to, or ``None``.  Accepts every ``store=`` spelling."""
        from repro.campaign.store import open_store

        return open_store(self.store)

    def with_overrides(self, **fields: Any) -> "RunOptions":
        """A copy with the given fields replaced."""
        return replace(self, **fields)
