"""Synthetic trace generator expanding benchmark profiles into traces.

The generator interleaves the profile's access streams.  Each stream advances
through its own virtual-address region according to its behavioural template
(sequential sweep, hot region, pointer chase, strided buffer); the generator
switches between streams with the profile's stickiness, inserts compute
instructions to reach the target memory-reference fraction, and attaches
dependence edges (pointer-chase address dependencies and load-to-use edges)
that the out-of-order pipeline later has to respect.

Every profile is generated with its own seeded RNG, so traces are fully
reproducible and identical across the configurations being compared.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cpu.instruction import Instruction, InstructionKind
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.workloads.profiles import BenchmarkProfile, StreamKind, StreamSpec
from repro.workloads.trace import MemoryTrace

#: gap between the regions assigned to different streams (in pages); large
#: enough that streams never collide even with big footprints.
_REGION_STRIDE_PAGES = 1 << 14
#: first page of the synthetic address space region used by the generator
_REGION_BASE_PAGE = 1 << 6


class _StreamState:
    """Mutable per-stream generation state."""

    __slots__ = ("spec", "base_page", "page_index", "offset", "last_load_seq", "field_burst")

    def __init__(self, spec: StreamSpec, stream_index: int, rng: random.Random) -> None:
        self.spec = spec
        self.base_page = _REGION_BASE_PAGE + stream_index * _REGION_STRIDE_PAGES
        self.page_index = rng.randrange(spec.footprint_pages)
        self.offset = rng.randrange(0, 4096, 8)
        self.last_load_seq: Optional[int] = None
        #: remaining same-line "field" accesses of a pointer-chase node
        self.field_burst = 0

    # ------------------------------------------------------------------
    def next_address(self, rng: random.Random, layout: AddressLayout) -> int:
        """Advance the stream and return the next virtual address."""
        spec = self.spec
        page_bytes = layout.page_bytes
        if spec.kind in (StreamKind.SEQUENTIAL, StreamKind.STRIDED_BUFFER):
            self.offset += spec.stride_bytes
            if self.offset >= page_bytes:
                self.offset -= page_bytes
                self.page_index = (self.page_index + 1) % spec.footprint_pages
        elif spec.kind is StreamKind.HOT_REGION:
            if rng.random() >= spec.page_stay_probability:
                self.page_index = rng.randrange(spec.footprint_pages)
            # Mostly nearby offsets, occasionally a jump within the page.
            if rng.random() < 0.7:
                self.offset = (self.offset + rng.choice((4, 8, 8, 16, 64))) % page_bytes
            else:
                self.offset = rng.randrange(0, page_bytes, 4)
        else:  # POINTER_CHASE
            if self.field_burst > 0:
                # Accessing further fields of the current node: stay within
                # the node's cache line (what lets MALEC merge mcf's loads).
                self.field_burst -= 1
                line_base = self.offset - (self.offset % layout.line_bytes)
                self.offset = line_base + rng.randrange(0, layout.line_bytes, 8)
            else:
                if rng.random() >= spec.page_stay_probability:
                    self.page_index = rng.randrange(spec.footprint_pages)
                self.offset = rng.randrange(0, page_bytes, 8)
                self.field_burst = rng.choice((0, 1, 1, 2, 2, 3))
        page = self.base_page + self.page_index
        return layout.compose(page, self.offset)


class SyntheticTraceGenerator:
    """Expands a :class:`BenchmarkProfile` into a :class:`MemoryTrace`."""

    def __init__(self, profile: BenchmarkProfile, layout: AddressLayout = DEFAULT_LAYOUT) -> None:
        self.profile = profile
        self.layout = layout

    # ------------------------------------------------------------------
    def generate(self, instructions: Optional[int] = None, seed: Optional[int] = None) -> MemoryTrace:
        """Generate a trace of ``instructions`` dynamic instructions.

        ``instructions`` and ``seed`` default to the profile's values, so a
        plain ``generate()`` is fully deterministic per benchmark.
        """
        profile = self.profile
        total = instructions if instructions is not None else profile.instructions
        rng = random.Random(seed if seed is not None else profile.seed)
        states = [
            _StreamState(spec, index, rng) for index, spec in enumerate(profile.streams)
        ]
        weights = [spec.weight for spec in profile.streams]

        out: List[Instruction] = []
        current_stream = 0
        previous_stream = 0
        last_load_seq: Optional[int] = None

        while len(out) < total:
            # ----------------------------------------------------------
            # Pick the stream for the next memory reference.  Switches
            # preferentially alternate with the previously active stream
            # (``a[i] = b[i] + c[i]`` style interleaving), which is what lets
            # a page re-appear after only one or two intermediate accesses —
            # the recovery Fig. 1 measures for 1..3 tolerated intermediates.
            # ----------------------------------------------------------
            if len(states) > 1 and rng.random() < profile.stream_switch_probability:
                if previous_stream != current_stream and rng.random() < 0.6:
                    current_stream, previous_stream = previous_stream, current_stream
                else:
                    previous_stream = current_stream
                    current_stream = rng.choices(range(len(states)), weights=weights, k=1)[0]
            state = states[current_stream]
            spec = state.spec

            address = state.next_address(rng, self.layout)
            is_store = rng.random() < spec.store_fraction

            deps: List[int] = []
            seq = len(out)
            if not is_store:
                if (
                    spec.kind is StreamKind.POINTER_CHASE
                    or rng.random() < profile.pointer_chase_dependency
                ):
                    if state.last_load_seq is not None:
                        distance = seq - state.last_load_seq
                        if distance > 0:
                            deps.append(distance)
            else:
                # Stores usually consume a recently produced value.
                if last_load_seq is not None and rng.random() < profile.load_use_dependency:
                    distance = seq - last_load_seq
                    if distance > 0:
                        deps.append(distance)

            kind = InstructionKind.STORE if is_store else InstructionKind.LOAD
            out.append(Instruction(kind=kind, address=address, size=rng.choice((4, 4, 8)), deps=tuple(deps)))
            if kind is InstructionKind.LOAD:
                state.last_load_seq = seq
                last_load_seq = seq

            # ----------------------------------------------------------
            # Interleave compute instructions to reach the memory fraction.
            # ----------------------------------------------------------
            while len(out) < total and rng.random() > profile.memory_fraction:
                seq = len(out)
                compute_deps: List[int] = []
                if last_load_seq is not None and rng.random() < profile.load_use_dependency:
                    distance = seq - last_load_seq
                    if distance > 0:
                        compute_deps.append(distance)
                elif out and rng.random() < 0.5:
                    compute_deps.append(1)
                out.append(Instruction(kind=InstructionKind.COMPUTE, deps=tuple(compute_deps)))

        return MemoryTrace(
            name=profile.name,
            instructions=out[:total],
            suite=profile.suite,
            layout=self.layout,
        )


def generate_trace(
    profile: BenchmarkProfile,
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: AddressLayout = DEFAULT_LAYOUT,
) -> MemoryTrace:
    """Convenience wrapper around :class:`SyntheticTraceGenerator`."""
    return SyntheticTraceGenerator(profile, layout=layout).generate(instructions, seed)
