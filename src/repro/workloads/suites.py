"""Named benchmark profiles for the SPEC CPU2000 and MediaBench2 suites.

The paper evaluates 12 SPEC-INT, 14 SPEC-FP and 12 MediaBench2 benchmarks
(Fig. 4's x-axis).  Each profile below is a synthetic stand-in calibrated to
the characteristics the paper reports or that are well documented for the
benchmark:

* suite-level memory-reference fractions (45 % INT, 40 % FP, 37 % MB2) and a
  2:1 load/store ratio;
* ``mcf`` and ``art`` as streaming/pointer-chasing workloads with working
  sets far beyond the L1 (the paper: ``mcf`` misses ~7x the average, both
  show the smallest speedups);
* ``gap`` with a high load share (37 % of instructions) and long dependence
  chains, plus access patterns that favour load merging (56 % of its
  improvement comes from merging); ``equake`` similarly merge-friendly
  (66 %); ``mgrid`` with poor intra-line locality (<2 % from merging);
* ``djpeg`` and ``h263dec`` with small, highly structured working sets and
  abundant memory-level parallelism (≈30 % speedup for MALEC).

The exact stream compositions are necessarily synthetic; tests only rely on
the *relative* character (e.g. ``mcf`` misses much more than the average,
media benchmarks have higher page locality), matching how the paper uses the
benchmarks.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

from repro.workloads.profiles import BenchmarkProfile, StreamKind, StreamSpec

#: canonical suite names used throughout the repository
SPEC_INT = "SPEC-INT"
SPEC_FP = "SPEC-FP"
MEDIABENCH2 = "MB2"
#: extra profiles that are not paper benchmarks: synthetic corner-case
#: workloads used to diversify sensitivity sweeps and design-space searches
SYNTHETIC = "SYN"
#: adversarial profiles built to stress one structure to its limit; used by
#: the differential test net, not by sweeps or design-space presets
STRESS = "STRESS"
#: the paper's three suites (Fig. 4's grouping)
SUITES: Tuple[str, ...] = (SPEC_INT, SPEC_FP, MEDIABENCH2)
#: every suite the registry knows, including the synthetic extras
ALL_SUITES: Tuple[str, ...] = SUITES + (SYNTHETIC, STRESS)


# ----------------------------------------------------------------------
# Stream construction helpers
# ----------------------------------------------------------------------
def hot(pages: int, stay: float = 0.85, weight: float = 1.0, stores: float = 0.3) -> StreamSpec:
    """A hot-region stream (stack frames, hash tables, lookup tables)."""
    return StreamSpec(
        kind=StreamKind.HOT_REGION,
        weight=weight,
        footprint_pages=pages,
        page_stay_probability=stay,
        store_fraction=stores,
    )


def seq(pages: int, stride: int = 8, weight: float = 1.0, stores: float = 0.25) -> StreamSpec:
    """A sequential sweep over ``pages`` pages with the given stride."""
    return StreamSpec(
        kind=StreamKind.SEQUENTIAL,
        weight=weight,
        footprint_pages=pages,
        stride_bytes=stride,
        store_fraction=stores,
    )


def chase(pages: int, stay: float = 0.5, weight: float = 1.0, stores: float = 0.15) -> StreamSpec:
    """A pointer-chase stream over ``pages`` pages."""
    return StreamSpec(
        kind=StreamKind.POINTER_CHASE,
        weight=weight,
        footprint_pages=pages,
        page_stay_probability=stay,
        store_fraction=stores,
    )


def buffer(pages: int, stride: int = 4, weight: float = 1.0, stores: float = 0.3) -> StreamSpec:
    """A dense strided buffer walk (media kernels, merge-friendly)."""
    return StreamSpec(
        kind=StreamKind.STRIDED_BUFFER,
        weight=weight,
        footprint_pages=pages,
        stride_bytes=stride,
        store_fraction=stores,
    )


def _profile(
    name: str,
    suite: str,
    streams: List[StreamSpec],
    memory_fraction: float,
    switch: float = 0.35,
    chase_dep: float = 0.05,
    load_use: float = 0.35,
    seed_offset: int = 0,
) -> BenchmarkProfile:
    """Internal helper keeping the per-benchmark definitions compact."""
    return BenchmarkProfile(
        name=name,
        suite=suite,
        memory_fraction=memory_fraction,
        streams=tuple(streams),
        stream_switch_probability=switch,
        pointer_chase_dependency=chase_dep,
        load_use_dependency=load_use,
        seed=zlib.crc32(name.encode("utf-8")) % 100_000 + seed_offset + 7,
    )


# ----------------------------------------------------------------------
# SPEC CPU2000 integer benchmarks (memory fraction ≈ 45 %)
# ----------------------------------------------------------------------
def _spec_int_profiles() -> List[BenchmarkProfile]:
    p = []
    p.append(_profile("gzip", SPEC_INT, [hot(4, 0.9), seq(40, 8, 0.5), buffer(3, 4, 0.6)], 0.44, load_use=0.5))
    p.append(_profile("vpr", SPEC_INT, [hot(6, 0.85), chase(10, 0.6, 0.5), buffer(4, 8, 0.4)], 0.45, switch=0.4, load_use=0.5))
    p.append(_profile("gcc", SPEC_INT, [hot(8, 0.82), chase(16, 0.55, 0.5), seq(48, 8, 0.35)], 0.46, switch=0.45, chase_dep=0.15, load_use=0.5))
    p.append(_profile("mcf", SPEC_INT, [chase(2600, 0.35, 1.2), seq(1800, 64, 0.7, 0.1), hot(4, 0.85, 0.3)], 0.46, switch=0.45, chase_dep=0.6, load_use=0.55))
    p.append(_profile("crafty", SPEC_INT, [hot(3, 0.92), hot(6, 0.85, 0.6), buffer(3, 8, 0.4)], 0.44, switch=0.3, load_use=0.5))
    p.append(_profile("parser", SPEC_INT, [hot(5, 0.85), chase(12, 0.6, 0.6)], 0.45, switch=0.4, chase_dep=0.25, load_use=0.5))
    p.append(_profile("eon", SPEC_INT, [hot(3, 0.92), buffer(4, 8, 0.7), buffer(3, 4, 0.4)], 0.43, load_use=0.45))
    p.append(_profile("perlbmk", SPEC_INT, [hot(6, 0.85), chase(10, 0.6, 0.5), buffer(4, 8, 0.3)], 0.45, switch=0.4, chase_dep=0.2, load_use=0.5))
    p.append(_profile("gap", SPEC_INT, [buffer(5, 8, 1.2, 0.12), hot(4, 0.9, 0.8, 0.15), chase(8, 0.65, 0.4)], 0.45, switch=0.25, chase_dep=0.45, load_use=0.6))
    p.append(_profile("vortex", SPEC_INT, [hot(8, 0.82), chase(14, 0.55, 0.5), buffer(5, 8, 0.35)], 0.45, switch=0.4, chase_dep=0.15, load_use=0.5))
    p.append(_profile("bzip2", SPEC_INT, [seq(90, 8, 1.0, 0.35), hot(5, 0.88, 0.8), buffer(3, 4, 0.4)], 0.44, switch=0.3, load_use=0.45))
    p.append(_profile("twolf", SPEC_INT, [hot(5, 0.85), chase(9, 0.6, 0.7)], 0.46, switch=0.4, chase_dep=0.2, load_use=0.55))
    return p


# ----------------------------------------------------------------------
# SPEC CPU2000 floating-point benchmarks (memory fraction ≈ 40 %)
# ----------------------------------------------------------------------
def _spec_fp_profiles() -> List[BenchmarkProfile]:
    p = []
    p.append(_profile("wupwise", SPEC_FP, [seq(60, 8, 1.0, 0.2), hot(4, 0.9, 0.5), buffer(4, 8, 0.4)], 0.40, switch=0.3, load_use=0.4))
    p.append(_profile("swim", SPEC_FP, [seq(1400, 8, 1.2, 0.25), seq(1400, 8, 0.8, 0.25), hot(3, 0.9, 0.2)], 0.40, switch=0.3, load_use=0.35))
    p.append(_profile("mgrid", SPEC_FP, [seq(500, 136, 1.2, 0.2), seq(400, 72, 0.6, 0.2), hot(3, 0.9, 0.3)], 0.40, switch=0.25, load_use=0.35))
    p.append(_profile("applu", SPEC_FP, [seq(160, 16, 1.0, 0.25), seq(120, 24, 0.6, 0.25), hot(4, 0.9, 0.3)], 0.40, switch=0.3, load_use=0.35))
    p.append(_profile("mesa", SPEC_FP, [buffer(8, 4, 1.0), hot(5, 0.88, 0.7), seq(30, 8, 0.35)], 0.39, switch=0.3, load_use=0.35))
    p.append(_profile("galgel", SPEC_FP, [seq(70, 8, 1.0, 0.2), hot(6, 0.88, 0.6), buffer(4, 8, 0.4)], 0.40, switch=0.3, load_use=0.35))
    p.append(_profile("art", SPEC_FP, [seq(1600, 8, 1.4, 0.1), seq(1600, 8, 0.8, 0.1), hot(3, 0.9, 0.2)], 0.41, switch=0.35, load_use=0.45))
    p.append(_profile("equake", SPEC_FP, [buffer(12, 4, 1.2, 0.15), chase(14, 0.65, 0.4), hot(4, 0.9, 0.4)], 0.41, switch=0.3, chase_dep=0.2, load_use=0.4))
    p.append(_profile("facerec", SPEC_FP, [seq(80, 8, 1.0, 0.2), buffer(6, 8, 0.6), hot(4, 0.9, 0.4)], 0.40, switch=0.3, load_use=0.35))
    p.append(_profile("ammp", SPEC_FP, [chase(20, 0.55, 1.0), seq(70, 16, 0.5, 0.2), hot(4, 0.88, 0.4)], 0.41, switch=0.35, chase_dep=0.3, load_use=0.4))
    p.append(_profile("lucas", SPEC_FP, [seq(120, 16, 1.0, 0.2), hot(4, 0.9, 0.4)], 0.39, switch=0.25, load_use=0.35))
    p.append(_profile("fma3d", SPEC_FP, [seq(90, 12, 1.0, 0.25), hot(6, 0.85, 0.7), chase(10, 0.6, 0.3)], 0.40, switch=0.35, load_use=0.35))
    p.append(_profile("sixtrack", SPEC_FP, [hot(5, 0.9, 1.0), buffer(5, 8, 0.7), seq(40, 8, 0.35)], 0.39, switch=0.3, load_use=0.35))
    p.append(_profile("apsi", SPEC_FP, [seq(80, 16, 1.0, 0.25), hot(5, 0.88, 0.6)], 0.40, switch=0.3, load_use=0.35))
    return p


# ----------------------------------------------------------------------
# MediaBench2 benchmarks (memory fraction ≈ 37 %, highly structured)
# ----------------------------------------------------------------------
def _mediabench_profiles() -> List[BenchmarkProfile]:
    p = []

    def media(name: str, pages: int, stride: int = 4, extra_hot: int = 3,
              switch: float = 0.22, memory_fraction: float = 0.37) -> BenchmarkProfile:
        return _profile(
            name,
            MEDIABENCH2,
            [buffer(pages, stride, 1.3, 0.3), buffer(max(2, pages // 2), stride * 2, 0.6, 0.3),
             hot(extra_hot, 0.92, 0.5, 0.25)],
            memory_fraction,
            switch=switch,
            load_use=0.35,
        )

    p.append(media("cjpeg", 6, 4))
    p.append(media("djpeg", 4, 4, extra_hot=2, switch=0.18))
    p.append(media("h263dec", 3, 4, extra_hot=2, switch=0.18))
    p.append(media("h263enc", 6, 4))
    p.append(media("h264dec", 7, 4, extra_hot=3))
    p.append(media("h264enc", 10, 4, extra_hot=4, switch=0.26))
    p.append(media("jpg2000dec", 8, 8, extra_hot=3))
    p.append(media("jpg2000enc", 9, 8, extra_hot=4))
    p.append(media("mpeg2dec", 5, 4, extra_hot=2, switch=0.2))
    p.append(media("mpeg2enc", 8, 4, extra_hot=3))
    p.append(media("mpeg4dec", 6, 4, extra_hot=3, switch=0.2))
    p.append(media("mpeg4enc", 11, 4, extra_hot=4, switch=0.26))
    return p


# ----------------------------------------------------------------------
# Synthetic scenario-diversity profiles (not part of the paper's 38)
# ----------------------------------------------------------------------
def _synthetic_profiles() -> List[BenchmarkProfile]:
    """Corner-case workloads that stress the ends of the locality spectrum.

    ``ptrchase`` is a worst case for page-based grouping: almost every load
    is a dependent pointer dereference into a multi-megabyte heap, streams
    switch often and pages are rarely revisited, so MALEC finds few accesses
    to share a translation with.  ``streamwrite`` is the opposite extreme on
    the store side: long unit-stride write bursts through large buffers (a
    memset/copy-out kernel), which exercises store-buffer drain, merge
    windows and the one-page-per-cycle restriction under write pressure.
    Both extend sensitivity sweeps and design-space searches beyond the
    paper's benchmark mix; neither is counted in ``ALL_BENCHMARKS``.
    """
    p = []
    p.append(
        _profile(
            "ptrchase",
            SYNTHETIC,
            [chase(3200, 0.15, 1.3, 0.08), chase(1600, 0.25, 0.7, 0.1), hot(3, 0.8, 0.25)],
            0.46,
            switch=0.55,
            chase_dep=0.7,
            load_use=0.6,
        )
    )
    p.append(
        _profile(
            "streamwrite",
            SYNTHETIC,
            [seq(1500, 8, 1.4, 0.85), seq(900, 16, 0.7, 0.8), hot(3, 0.9, 0.3, 0.4)],
            0.42,
            switch=0.22,
            load_use=0.3,
        )
    )
    return p


# ----------------------------------------------------------------------
# Adversarial stress profiles (differential-test workloads)
# ----------------------------------------------------------------------
def _stress_profiles() -> List[BenchmarkProfile]:
    """Adversarial workloads that push one structure to its limit.

    ``tlbthrash`` marches page-sized strides through footprints far beyond
    the 64-entry TLB (let alone the 16-entry uTLB), so nearly every access
    lands on a page the translation hierarchy has already evicted — a
    page-locality worst case with almost no dependences, keeping MLP (and
    therefore translation pressure per cycle) high.  ``depchase`` is the
    opposite failure mode: several pointer chases with an extreme
    chase-dependency probability, so addresses serialize *within* each
    stream while frequent stream switches control how many independent
    chains (the MLP) are in flight at once.  ``mlpladder`` is a ladder of
    stepped independent-miss streams: four sequential sweeps whose
    footprints and strides each step up by powers of two (64 pages at a
    64-byte stride through 4096 pages at a 512-byte stride), all with zero
    chase dependency and a tiny load-use probability, so every rung keeps
    its own run of independent misses in flight at a different level of the
    cache/TLB hierarchy at once — the many-overlapping-miss schedule that
    exercises bank arbitration, way prediction and the miss bookkeeping the
    specialized kernels delegate.  All are registered, seeded profiles like
    any benchmark, but live in their own ``STRESS`` suite so sweep and
    design-space presets never pick them up implicitly; the columnar/object
    and kernel differential suites and the golden-result net exercise them
    explicitly.
    """
    p = []
    p.append(
        _profile(
            "tlbthrash",
            STRESS,
            [seq(1024, 4096, 1.2, 0.2), seq(512, 4096, 0.8, 0.2), hot(2, 0.8, 0.15)],
            0.44,
            switch=0.45,
            chase_dep=0.0,
            load_use=0.2,
        )
    )
    p.append(
        _profile(
            "depchase",
            STRESS,
            [chase(96, 0.3, 1.0, 0.1), chase(192, 0.25, 1.0, 0.1), chase(384, 0.2, 1.0, 0.1), chase(768, 0.15, 1.0, 0.1)],
            0.46,
            switch=0.6,
            chase_dep=0.85,
            load_use=0.55,
        )
    )
    p.append(
        _profile(
            "mlpladder",
            STRESS,
            [seq(64, 64, 1.0, 0.1), seq(256, 128, 1.0, 0.1), seq(1024, 256, 1.0, 0.1), seq(4096, 512, 1.0, 0.1)],
            0.48,
            switch=0.5,
            chase_dep=0.0,
            load_use=0.1,
        )
    )
    return p


# ----------------------------------------------------------------------
# Public registry
# ----------------------------------------------------------------------
_PAPER_PROFILES: List[BenchmarkProfile] = (
    _spec_int_profiles() + _spec_fp_profiles() + _mediabench_profiles()
)
_SYNTH_PROFILES: List[BenchmarkProfile] = _synthetic_profiles()
_STRESS_PROFILES: List[BenchmarkProfile] = _stress_profiles()

_REGISTRY: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in _PAPER_PROFILES + _SYNTH_PROFILES + _STRESS_PROFILES
}

#: the paper's 38 benchmark names in Fig. 4's plotting order
ALL_BENCHMARKS: Tuple[str, ...] = tuple(p.name for p in _PAPER_PROFILES)

#: the synthetic scenario-diversity extras (SYN suite)
SYNTHETIC_BENCHMARKS: Tuple[str, ...] = tuple(p.name for p in _SYNTH_PROFILES)

#: the adversarial differential-test workloads (STRESS suite); deliberately
#: kept out of SYNTHETIC_BENCHMARKS and LOCALITY_DIVERSE_BENCHMARKS so
#: sensitivity sweeps and DSE presets keep their historical grids
STRESS_BENCHMARKS: Tuple[str, ...] = tuple(p.name for p in _STRESS_PROFILES)

#: every profile the registry can generate (paper grid + all extras)
EXTENDED_BENCHMARKS: Tuple[str, ...] = (
    ALL_BENCHMARKS + SYNTHETIC_BENCHMARKS + STRESS_BENCHMARKS
)

#: locality-diverse subset used by sensitivity sweeps and DSE presets: the
#: Sec. VI-D paper picks (high- and low-locality SPEC plus media) extended
#: with the two synthetic extremes
LOCALITY_DIVERSE_BENCHMARKS: Tuple[str, ...] = (
    "gzip",
    "mcf",
    "art",
    "djpeg",
    "h263dec",
) + SYNTHETIC_BENCHMARKS


def benchmark_profile(name: str) -> BenchmarkProfile:
    """Return the profile of benchmark ``name`` (raises ``KeyError`` if unknown)."""
    return _REGISTRY[name]


def suite_profiles(suite: str) -> List[BenchmarkProfile]:
    """All profiles of one suite (``SPEC-INT``, ``SPEC-FP``, ``MB2``, ``SYN`` or ``STRESS``)."""
    if suite not in ALL_SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {ALL_SUITES}")
    return [profile for profile in _REGISTRY.values() if profile.suite == suite]
