"""Benchmark profiles: parameterized descriptions of memory behaviour.

A :class:`BenchmarkProfile` describes one benchmark's dynamic behaviour as a
mixture of *access streams*.  A stream models one source of memory references
a real program interleaves — a sequential array walk, a pointer chase through
a large heap, repeated accesses to a small hot region, stack traffic — and
the generator (:mod:`repro.workloads.synthetic`) switches between streams
with a configurable stickiness.  This interleaving of a few streams is what
produces the paper's key observation (Fig. 1): most loads are followed by
another load to the same page, and allowing one to three *intermediate*
accesses to a different page (i.e. from a different stream) recovers most of
the remainder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class StreamKind(enum.Enum):
    """Behavioural template of one access stream."""

    #: walks a large region with a fixed stride and little reuse (array
    #: sweeps; drives capacity misses as in ``swim``/``art``)
    SEQUENTIAL = "sequential"
    #: repeatedly touches a small set of pages with good temporal locality
    #: (hash tables, stack frames, media macroblock buffers)
    HOT_REGION = "hot_region"
    #: dependent loads whose address comes from the previous load of the
    #: stream (linked data structures; ``mcf``-style serialization)
    POINTER_CHASE = "pointer_chase"
    #: dense, line-sequential accesses within one buffer (media kernels;
    #: very high intra-line locality → load merging opportunities)
    STRIDED_BUFFER = "strided_buffer"


@dataclass(frozen=True)
class StreamSpec:
    """One access stream of a benchmark profile.

    Attributes
    ----------
    kind:
        Behavioural template.
    weight:
        Relative probability of an access being drawn from this stream.
    footprint_pages:
        Number of distinct pages the stream cycles through.
    stride_bytes:
        Address increment between consecutive accesses of the stream
        (SEQUENTIAL / STRIDED_BUFFER kinds).
    page_stay_probability:
        Probability that the stream's next access remains on its current
        page (HOT_REGION / POINTER_CHASE kinds).
    store_fraction:
        Fraction of this stream's references that are stores.
    """

    kind: StreamKind
    weight: float = 1.0
    footprint_pages: int = 8
    stride_bytes: int = 8
    page_stay_probability: float = 0.8
    store_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("stream weight must be positive")
        if self.footprint_pages <= 0:
            raise ValueError("stream footprint must cover at least one page")
        if not 0 <= self.page_stay_probability <= 1:
            raise ValueError("page_stay_probability must be a probability")
        if not 0 <= self.store_fraction <= 1:
            raise ValueError("store_fraction must be a probability")


@dataclass(frozen=True)
class BenchmarkProfile:
    """Complete description of one synthetic benchmark.

    Attributes
    ----------
    name / suite:
        Benchmark name and suite label (``SPEC-INT``, ``SPEC-FP``, ``MB2``).
    memory_fraction:
        Fraction of instructions that are memory references (Sec. III: 40 %
        average, 45 % SPEC-INT, 37 % MediaBench2).
    streams:
        The access streams the benchmark interleaves.
    stream_switch_probability:
        Probability that consecutive memory references come from different
        streams — the source of "intermediate accesses to a different page".
    pointer_chase_dependency:
        Probability that a load's address depends on the previous load of
        its stream (serializes address computation, as in ``mcf``).
    load_use_dependency:
        Probability that a compute instruction depends on a recent load
        (load-to-use pressure; higher values make performance more sensitive
        to L1 latency, as the paper observes for SPEC-INT).
    instructions:
        Default trace length when the caller does not override it.
    seed:
        Per-benchmark RNG seed for reproducibility.
    """

    name: str
    suite: str
    memory_fraction: float = 0.40
    streams: Tuple[StreamSpec, ...] = field(default_factory=tuple)
    stream_switch_probability: float = 0.35
    pointer_chase_dependency: float = 0.05
    load_use_dependency: float = 0.35
    instructions: int = 20_000
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.streams:
            raise ValueError("a profile needs at least one access stream")
        if not 0 < self.memory_fraction < 1:
            raise ValueError("memory_fraction must be in (0, 1)")
        for probability in (
            self.stream_switch_probability,
            self.pointer_chase_dependency,
            self.load_use_dependency,
        ):
            if not 0 <= probability <= 1:
                raise ValueError("profile probabilities must lie in [0, 1]")
        if self.instructions <= 0:
            raise ValueError("a profile must generate at least one instruction")

    @property
    def total_stream_weight(self) -> float:
        """Sum of stream weights (used for sampling)."""
        return sum(stream.weight for stream in self.streams)

    @property
    def footprint_pages(self) -> int:
        """Upper bound on the number of distinct pages the profile touches."""
        return sum(stream.footprint_pages for stream in self.streams)
