"""Workload generation: synthetic traces standing in for SPEC and MediaBench2.

The paper drives its evaluation with the most representative 1-billion
instruction phases of SPEC CPU2000 and MediaBench2 (Sec. III).  Those traces
are not redistributable and gem5 is unavailable, so this package generates
*synthetic* instruction traces whose memory behaviour is calibrated to the
statistics the paper reports:

* memory references make up ~40 % of the instruction stream (45 % for
  SPEC-INT, 40 % for SPEC-FP, 37 % for MediaBench2) with a 2:1 load/store
  ratio;
* ~70 % of loads are directly followed by another load to the same page, and
  allowing 1/2/3 intermediate accesses raises the ratio to ~85/90/92 %
  (Fig. 1);
* ~46 % of loads are directly followed by a load to the same cache line;
* individual benchmarks keep their published character: ``mcf`` and ``art``
  are streaming with very high miss rates, ``gap`` has long dependence chains
  and a 37 % load share, ``djpeg``/``h263dec`` have small, highly local
  working sets, ``mgrid`` has poor intra-line locality, and so on.

Each benchmark is described by a :class:`~repro.workloads.profiles.BenchmarkProfile`
composed of weighted access streams; the
:class:`~repro.workloads.synthetic.SyntheticTraceGenerator` expands a profile
into a deterministic :class:`~repro.workloads.trace.MemoryTrace`.
"""

from repro.workloads.trace import MemoryTrace
from repro.workloads.columnar import ColumnarTrace, resolve_frontend
from repro.workloads.profiles import BenchmarkProfile, StreamSpec, StreamKind
from repro.workloads.synthetic import SyntheticTraceGenerator, generate_trace
from repro.workloads.binfmt import (
    TraceFormatError,
    dump_rtrc,
    load_rtrc,
    trace_fingerprint,
)
from repro.workloads.ingest import (
    TraceParseError,
    interleave,
    load_trace,
    parse_csv,
    parse_dinero,
    parse_lackey,
    skip_warmup,
    subsample,
    window,
)
from repro.workloads.registry import (
    TraceHandle,
    register_trace,
    registered_columnar,
    registered_handle,
    registered_trace,
)
from repro.workloads.suites import (
    ALL_BENCHMARKS,
    ALL_SUITES,
    EXTENDED_BENCHMARKS,
    LOCALITY_DIVERSE_BENCHMARKS,
    MEDIABENCH2,
    SPEC_FP,
    SPEC_INT,
    STRESS,
    STRESS_BENCHMARKS,
    SUITES,
    SYNTHETIC,
    SYNTHETIC_BENCHMARKS,
    benchmark_profile,
    suite_profiles,
)

__all__ = [
    "MemoryTrace",
    "ColumnarTrace",
    "resolve_frontend",
    "BenchmarkProfile",
    "StreamSpec",
    "StreamKind",
    "SyntheticTraceGenerator",
    "generate_trace",
    "TraceFormatError",
    "dump_rtrc",
    "load_rtrc",
    "trace_fingerprint",
    "TraceParseError",
    "interleave",
    "load_trace",
    "parse_csv",
    "parse_dinero",
    "parse_lackey",
    "skip_warmup",
    "subsample",
    "window",
    "TraceHandle",
    "register_trace",
    "registered_columnar",
    "registered_handle",
    "registered_trace",
    "ALL_BENCHMARKS",
    "ALL_SUITES",
    "EXTENDED_BENCHMARKS",
    "LOCALITY_DIVERSE_BENCHMARKS",
    "MEDIABENCH2",
    "SPEC_FP",
    "SPEC_INT",
    "STRESS",
    "STRESS_BENCHMARKS",
    "SUITES",
    "SYNTHETIC",
    "SYNTHETIC_BENCHMARKS",
    "benchmark_profile",
    "suite_profiles",
]
