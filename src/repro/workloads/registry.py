"""Process-local registry of ingested traces, and unified workload resolution.

Campaign specs and DSE spaces name their workloads with plain strings.  For
the paper's benchmarks those strings resolve through the synthetic profile
registry (:func:`~repro.workloads.suites.benchmark_profile`); this module
adds a second namespace for *ingested* traces — real application traces
loaded from disk (:mod:`repro.workloads.ingest`) and registered under a
handle name — and the resolution helpers the campaign layer uses to treat
both uniformly:

* :func:`register_trace` installs a :class:`~repro.workloads.trace.MemoryTrace`
  under a name (default ``<name>@<hash10>``) and returns its
  :class:`TraceHandle`, which carries the content fingerprint
  (:func:`~repro.workloads.binfmt.trace_fingerprint`) that campaign cell
  keys embed — results are keyed by *what the trace contains*, never by the
  file path it came from, so resumed campaigns recognise their cells as long
  as the same trace bytes are registered again;
* :func:`validate_workload` / :func:`workload_suite` /
  :func:`workload_trace_hash` answer "does this name exist", "which suite
  does it report under" and "which content hash pins it" for either
  namespace.

The registry is process-local on purpose: pool workers never consult it —
the campaign executor ships them the serialized trace bytes directly, keyed
by the same ``(workload, instructions, seed)`` tuples the parent resolved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs.logs import get_logger
from repro.workloads.binfmt import trace_fingerprint
from repro.workloads.suites import benchmark_profile
from repro.workloads.trace import MemoryTrace

logger = get_logger(__name__)

#: suite reported for ingested traces that do not carry one of their own
INGESTED_SUITE = "ingested"


@dataclass(frozen=True)
class TraceHandle:
    """Identity of one registered trace: name, content hash, suite, length."""

    name: str
    fingerprint: str
    suite: str
    length: int


_TRACES: Dict[str, MemoryTrace] = {}
_HANDLES: Dict[str, TraceHandle] = {}


def register_trace(trace: MemoryTrace, name: Optional[str] = None) -> TraceHandle:
    """Install ``trace`` in the registry; returns its :class:`TraceHandle`.

    ``name`` defaults to ``<trace.name>@<fingerprint[:10]>`` so two distinct
    ingests never collide silently.  Registering the same content under the
    same name is an idempotent no-op; the same name with *different* content,
    or a name shadowing a synthetic benchmark profile, raises ``ValueError``.
    """
    fingerprint = trace_fingerprint(trace)
    if name is None:
        name = f"{trace.name or 'trace'}@{fingerprint[:10]}"
    existing = _HANDLES.get(name)
    if existing is not None:
        if existing.fingerprint == fingerprint:
            return existing
        raise ValueError(
            f"trace name {name!r} is already registered with different content "
            f"(registered {existing.fingerprint[:10]}, new {fingerprint[:10]})"
        )
    try:
        benchmark_profile(name)
    except KeyError:
        pass
    else:
        raise ValueError(
            f"{name!r} names a synthetic benchmark profile; register the "
            "trace under a different name"
        )
    handle = TraceHandle(
        name=name,
        fingerprint=fingerprint,
        suite=trace.suite or INGESTED_SUITE,
        length=len(trace),
    )
    _TRACES[name] = trace
    _HANDLES[name] = handle
    logger.info(
        "registered trace %s (%d instructions, suite %s, %s)",
        name,
        handle.length,
        handle.suite,
        fingerprint[:10],
    )
    return handle


def registered_trace(name: str) -> Optional[MemoryTrace]:
    """The registered trace called ``name``, or ``None``."""
    return _TRACES.get(name)


def registered_columnar(name: str):
    """The columnar view of the registered trace ``name``, or ``None``.

    Both views of a registered trace are exposed: :func:`registered_trace`
    returns the object form, this returns the cached
    :class:`~repro.workloads.columnar.ColumnarTrace` (built on first use,
    shared across callers through the trace's own ``columnar()`` memo).
    """
    trace = _TRACES.get(name)
    return trace.columnar() if trace is not None else None


def registered_handle(name: str) -> Optional[TraceHandle]:
    """The :class:`TraceHandle` of ``name``, or ``None``."""
    return _HANDLES.get(name)


def registered_names() -> Tuple[str, ...]:
    """Names of every registered trace, in registration order."""
    return tuple(_HANDLES)


def clear_registry() -> None:
    """Drop every registered trace (test isolation)."""
    _TRACES.clear()
    _HANDLES.clear()


# ----------------------------------------------------------------------
# Unified workload resolution (synthetic profiles + ingested traces)
# ----------------------------------------------------------------------
def validate_workload(name: str) -> None:
    """Raise ``KeyError`` unless ``name`` is a profile or a registered trace."""
    if registered_handle(name) is not None:
        return
    try:
        benchmark_profile(name)
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}: neither a benchmark profile nor a "
            "registered trace (load one with `repro ... --trace-file FILE`)"
        ) from None


def workload_suite(name: str) -> str:
    """The suite ``name`` reports under, for either namespace."""
    handle = registered_handle(name)
    if handle is not None:
        return handle.suite
    return benchmark_profile(name).suite


def workload_trace_hash(name: str) -> str:
    """The content hash pinning ``name`` (empty for synthetic profiles)."""
    handle = registered_handle(name)
    return handle.fingerprint if handle is not None else ""
