"""Instruction trace container with memory-behaviour statistics.

A :class:`MemoryTrace` is an ordered list of
:class:`~repro.cpu.instruction.Instruction` objects plus a few derived
statistics used by the motivation analysis (Sec. III) and by the tests that
validate the synthetic generators against the paper's reported workload
characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.cpu.instruction import Instruction, InstructionKind
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT


@dataclass
class MemoryTrace:
    """A program-order instruction trace for one benchmark phase."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    suite: str = ""
    layout: AddressLayout = DEFAULT_LAYOUT

    def __post_init__(self) -> None:
        for seq, instruction in enumerate(self.instructions):
            instruction.seq = seq

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    def append(self, instruction: Instruction) -> None:
        """Append one instruction, assigning its sequence number."""
        instruction.seq = len(self.instructions)
        self.instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append several instructions in order."""
        for instruction in instructions:
            self.append(instruction)

    def head(self, count: int) -> "MemoryTrace":
        """A new trace containing the first ``count`` instructions."""
        sliced = [
            Instruction(kind=i.kind, address=i.address, size=i.size, deps=i.deps)
            for i in self.instructions[:count]
        ]
        return MemoryTrace(name=self.name, instructions=sliced, suite=self.suite, layout=self.layout)

    # ------------------------------------------------------------------
    # Derived statistics (Sec. III characteristics)
    # ------------------------------------------------------------------
    @property
    def loads(self) -> List[Instruction]:
        """All load instructions, in program order."""
        return [i for i in self.instructions if i.is_load]

    @property
    def stores(self) -> List[Instruction]:
        """All store instructions, in program order."""
        return [i for i in self.instructions if i.is_store]

    @property
    def memory_references(self) -> List[Instruction]:
        """All loads and stores, in program order."""
        return [i for i in self.instructions if i.is_memory]

    @property
    def memory_fraction(self) -> float:
        """Memory references as a fraction of all instructions."""
        if not self.instructions:
            return 0.0
        return len(self.memory_references) / len(self.instructions)

    @property
    def load_store_ratio(self) -> float:
        """Ratio of loads to stores (the paper reports ~2)."""
        stores = len(self.stores)
        return len(self.loads) / stores if stores else float("inf")

    def load_addresses(self) -> List[int]:
        """Addresses of all loads in program order (for locality analysis)."""
        return [i.address for i in self.instructions if i.is_load]

    def memory_addresses(self) -> List[int]:
        """Addresses of all memory references in program order."""
        return [i.address for i in self.instructions if i.is_memory]

    def footprint_pages(self) -> int:
        """Number of distinct pages touched by memory references."""
        return len({self.layout.page_id(a) for a in self.memory_addresses()})

    def footprint_lines(self) -> int:
        """Number of distinct cache lines touched by memory references."""
        return len({self.layout.line_number(a) for a in self.memory_addresses()})

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name}: {len(self)} instr, "
            f"{len(self.memory_references)} mem refs "
            f"({self.memory_fraction * 100:.1f}%), "
            f"ld/st={self.load_store_ratio:.2f}, "
            f"{self.footprint_pages()} pages"
        )
