"""Instruction trace container with memory-behaviour statistics.

A :class:`MemoryTrace` is an ordered list of
:class:`~repro.cpu.instruction.Instruction` objects plus a few derived
statistics used by the motivation analysis (Sec. III) and by the tests that
validate the synthetic generators against the paper's reported workload
characteristics.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.cpu.instruction import Instruction, InstructionKind, build_pipeline_arrays
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT


def _open_text(path: Union[str, Path], mode: str) -> IO[str]:
    """Open ``path`` as text, transparently gzipped for ``.gz`` names."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


@dataclass
class MemoryTrace:
    """A program-order instruction trace for one benchmark phase."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    suite: str = ""
    layout: AddressLayout = DEFAULT_LAYOUT

    def __post_init__(self) -> None:
        for seq, instruction in enumerate(self.instructions):
            instruction.seq = seq

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    def append(self, instruction: Instruction) -> None:
        """Append one instruction, assigning its sequence number."""
        instruction.seq = len(self.instructions)
        self.instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append several instructions in order."""
        for instruction in instructions:
            self.append(instruction)

    def head(self, count: int) -> "MemoryTrace":
        """A new trace containing the first ``count`` instructions."""
        sliced = [
            Instruction(kind=i.kind, address=i.address, size=i.size, deps=i.deps)
            for i in self.instructions[:count]
        ]
        return MemoryTrace(name=self.name, instructions=sliced, suite=self.suite, layout=self.layout)

    def precompute_decompositions(self, layout: Optional[AddressLayout] = None) -> int:
        """Warm ``layout``'s address-decomposition cache for this trace.

        Decomposes the address of every memory reference once through
        :meth:`repro.memory.address.AddressLayout.decompose` (``layout``
        defaults to the trace's own).  The simulator calls this before a run
        so no interface ever decomposes a trace address again — one
        decomposition per distinct address per layout instead of one per
        access per structure.  Returns the number of memory references seen.
        """
        target = layout if layout is not None else self.layout
        warmed = getattr(self, "_warmed_layouts", None)
        if warmed is None:
            warmed = self._warmed_layouts = {}
        marker = id(target)
        previous = warmed.get(marker)
        if previous is not None and previous[0] is target:
            # This exact layout object was already warmed for this trace; a
            # campaign runs one shared trace through many configurations, so
            # the walk would only re-hit the memo.  (Keyed by identity: the
            # memo lives on the layout instance itself.)
            return previous[1]
        decompose = target.decompose
        count = 0
        for instruction in self.instructions:
            address = instruction.address
            if address is not None:
                decompose(address)
                count += 1
        warmed[marker] = (target, count)
        return count

    # ------------------------------------------------------------------
    # Pipeline-ready arrays (seq-indexed, cached)
    # ------------------------------------------------------------------
    def pipeline_arrays(self):
        """Seq-indexed ``(kinds, addresses, sizes, producers)`` arrays.

        ``kinds[seq]`` is 0/1/2 for compute/load/store, ``producers[seq]``
        the tuple of absolute producer seqs (in-range only).  The pipeline
        reads these instead of per-instruction attributes; they are built
        once per trace and cached, so a campaign running one trace through
        many configurations (plus warm-up slices — the arrays cover the full
        seq space, any slice indexes into them) pays the pass exactly once.
        Invalidated when the trace grows.
        """
        cached = getattr(self, "_pipeline_arrays", None)
        if cached is not None and cached[0] == len(self.instructions):
            return cached[1]
        count = len(self.instructions)
        arrays = build_pipeline_arrays(self.instructions, count)
        self._pipeline_arrays = (count, arrays)
        return arrays

    # ------------------------------------------------------------------
    # Columnar view (simulator fast path)
    # ------------------------------------------------------------------
    def columnar(self):
        """The structure-of-arrays view of this trace, built once and cached.

        :class:`~repro.workloads.columnar.ColumnarTrace` carries the same
        instruction stream as parallel columns; the simulator's default
        (columnar) frontend converts through this accessor, so a campaign
        running one trace through many configurations pays the conversion
        exactly once.  Invalidated when the trace grows.
        """
        cached = getattr(self, "_columnar", None)
        if cached is not None and cached[0] == len(self.instructions):
            return cached[1]
        from repro.workloads.columnar import ColumnarTrace

        view = ColumnarTrace.from_trace(self)
        self._columnar = (len(self.instructions), view)
        return view

    # ------------------------------------------------------------------
    # Compact binary form (campaign worker shipping)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the trace to compact ``.rtrc`` bytes.

        The campaign executor pre-generates every benchmark trace once in
        the parent and ships these bytes to pool workers (instead of every
        worker regenerating the trace from the profile).  The payload is the
        ``.rtrc`` binary format (:mod:`repro.workloads.binfmt`): fixed-width
        little-endian records that decode through one ``struct.iter_unpack``
        pass plus one :class:`Instruction` construction per record — the
        same bytes ``repro ingest`` writes to disk, so the worker path and
        the trace store share a single codec.
        """
        from repro.workloads.binfmt import encode_trace

        return encode_trace(self)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "MemoryTrace":
        """Rebuild a trace serialized by :meth:`to_bytes` (``.rtrc`` bytes)."""
        from repro.workloads.binfmt import decode_trace

        return decode_trace(payload)

    def fingerprint(self) -> str:
        """Content hash of the instruction stream and layout (hex sha256).

        The hash campaign cells embed to reference ingested traces; see
        :func:`repro.workloads.binfmt.trace_fingerprint`.
        """
        from repro.workloads.binfmt import trace_fingerprint

        return trace_fingerprint(self)

    # ------------------------------------------------------------------
    # On-disk JSONL format (worker/user trace caching)
    # ------------------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines; ``.gz`` paths are gzip-compressed.

        The first line is a header object carrying the trace metadata (name,
        suite, address layout); every following line is one instruction.
        Memory-less fields are omitted per line, so compute instructions
        serialize to a few bytes.  Campaign workers and users can cache
        generated traces with this instead of regenerating them per process.
        """
        with _open_text(path, "w") as handle:
            header = {
                "name": self.name,
                "suite": self.suite,
                "layout": {
                    "address_bits": self.layout.address_bits,
                    "page_bytes": self.layout.page_bytes,
                    "line_bytes": self.layout.line_bytes,
                    "l1_capacity_bytes": self.layout.l1_capacity_bytes,
                    "l1_associativity": self.layout.l1_associativity,
                    "l1_banks": self.layout.l1_banks,
                    "subblock_bytes": self.layout.subblock_bytes,
                },
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for instruction in self.instructions:
                record = {"k": instruction.kind.value}
                if instruction.address is not None:
                    record["a"] = instruction.address
                    record["s"] = instruction.size
                if instruction.deps:
                    record["d"] = list(instruction.deps)
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "MemoryTrace":
        """Load a trace written by :meth:`to_jsonl` (gzip-aware)."""
        with _open_text(path, "r") as handle:
            header_line = handle.readline()
            if not header_line.strip():
                raise ValueError(f"{path}: empty trace file")
            header = json.loads(header_line)
            instructions = []
            for line in handle:
                if not line.strip():
                    continue
                record = json.loads(line)
                instructions.append(
                    Instruction(
                        kind=InstructionKind(record["k"]),
                        address=record.get("a"),
                        size=record.get("s", 4),
                        deps=tuple(record.get("d", ())),
                    )
                )
        return cls(
            name=header["name"],
            instructions=instructions,
            suite=header.get("suite", ""),
            layout=AddressLayout(**header["layout"]),
        )

    # ------------------------------------------------------------------
    # Derived statistics (Sec. III characteristics)
    # ------------------------------------------------------------------
    @property
    def loads(self) -> List[Instruction]:
        """All load instructions, in program order."""
        return [i for i in self.instructions if i.is_load]

    @property
    def stores(self) -> List[Instruction]:
        """All store instructions, in program order."""
        return [i for i in self.instructions if i.is_store]

    @property
    def memory_references(self) -> List[Instruction]:
        """All loads and stores, in program order."""
        return [i for i in self.instructions if i.is_memory]

    @property
    def memory_fraction(self) -> float:
        """Memory references as a fraction of all instructions."""
        if not self.instructions:
            return 0.0
        return len(self.memory_references) / len(self.instructions)

    @property
    def load_store_ratio(self) -> float:
        """Ratio of loads to stores (the paper reports ~2)."""
        stores = len(self.stores)
        return len(self.loads) / stores if stores else float("inf")

    def load_addresses(self) -> List[int]:
        """Addresses of all loads in program order (for locality analysis)."""
        return [i.address for i in self.instructions if i.is_load]

    def memory_addresses(self) -> List[int]:
        """Addresses of all memory references in program order."""
        return [i.address for i in self.instructions if i.is_memory]

    def footprint_pages(self) -> int:
        """Number of distinct pages touched by memory references."""
        return len({self.layout.page_id(a) for a in self.memory_addresses()})

    def footprint_lines(self) -> int:
        """Number of distinct cache lines touched by memory references."""
        return len({self.layout.line_number(a) for a in self.memory_addresses()})

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name}: {len(self)} instr, "
            f"{len(self.memory_references)} mem refs "
            f"({self.memory_fraction * 100:.1f}%), "
            f"ld/st={self.load_store_ratio:.2f}, "
            f"{self.footprint_pages()} pages"
        )
