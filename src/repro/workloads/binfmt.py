"""Compact binary trace format (``.rtrc``): the on-disk/wire form of a trace.

The JSONL trace format (:meth:`~repro.workloads.trace.MemoryTrace.to_jsonl`)
is human-inspectable but costs one ``json.loads`` per instruction to read —
that parse dominates campaign/DSE worker start-up once traces stop being
regenerated in every process.  ``.rtrc`` is the fast path: a little-endian
binary encoding with fixed-width per-instruction records that decodes through
``struct.iter_unpack`` (one C call for the whole record section) and
round-trips bit-identically against the JSONL form.

Layout (all integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       4     magic ``b"RTRC"``
    4       2     format version (currently 1)
    6       2     flags (reserved, must be 0)
    8       2     name length in bytes (UTF-8)
    10      2     suite length in bytes (UTF-8)
    12      8     instruction count
    20      8     dependency-pool length (number of u32 entries)
    28      28    address layout: 7 x u32 (address_bits, page_bytes,
                  line_bytes, l1_capacity_bytes, l1_associativity,
                  l1_banks, subblock_bytes)
    56      -     name bytes, then suite bytes
    ...     12*n  records: kind u8 (0 compute / 1 load / 2 store),
                  ndeps u8, size u16, address u64
    ...     4*d   dependency pool: u32 backward distances, record order

Records are fixed-width; variable-length dependency lists live in a single
trailing pool, consumed in record order (``ndeps`` entries per record).
Paths ending in ``.gz`` are transparently gzip-(de)compressed.

:func:`trace_fingerprint` derives the content hash campaign cells use to
reference ingested traces: it covers the format version, the address layout
and every instruction record — but *not* the display name or suite, so
re-registering the same instruction stream under another name dedupes to the
same stored results.
"""

from __future__ import annotations

import gzip
import hashlib
import struct
import sys
from array import array
from pathlib import Path
from typing import Tuple, Union

from repro.cpu.instruction import Instruction, InstructionKind
from repro.memory.address import AddressLayout

#: file magic of every ``.rtrc`` payload
RTRC_MAGIC = b"RTRC"

#: current format version
RTRC_VERSION = 1

_PRELUDE = struct.Struct("<4sHHHHQQ7I")
_RECORD = struct.Struct("<BBHQ")

#: order of the :class:`AddressLayout` fields inside the prelude
_LAYOUT_FIELDS = (
    "address_bits",
    "page_bytes",
    "line_bytes",
    "l1_capacity_bytes",
    "l1_associativity",
    "l1_banks",
    "subblock_bytes",
)

_KIND_CODES = {
    InstructionKind.COMPUTE: 0,
    InstructionKind.LOAD: 1,
    InstructionKind.STORE: 2,
}
_KINDS_BY_CODE = {code: kind for kind, code in _KIND_CODES.items()}


class TraceFormatError(ValueError):
    """A malformed, truncated or unsupported ``.rtrc`` payload."""


def _open_binary(path: Union[str, Path], mode: str):
    """Open ``path`` in binary mode, transparently gzipped for ``.gz`` names."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "b")
    return open(path, mode + "b")


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode_body(trace) -> Tuple[bytes, bytes, bytes]:
    """The (layout, records, deps-pool) byte sections of ``trace``.

    Shared by :func:`encode_trace` and :func:`trace_fingerprint`, so the
    content hash is by construction a hash of exactly what gets written.
    """
    layout_bytes = struct.pack("<7I", *(getattr(trace.layout, name) for name in _LAYOUT_FIELDS))
    pack = _RECORD.pack
    records = bytearray()
    deps_pool = array("I")
    for instruction in trace.instructions:
        deps = instruction.deps
        ndeps = len(deps)
        size = instruction.size
        address = instruction.address or 0
        if ndeps > 0xFF or size > 0xFFFF or address > 0xFFFFFFFFFFFFFFFF:
            raise TraceFormatError(
                f"instruction {instruction.seq} of {trace.name!r} does not fit "
                f".rtrc field widths (ndeps={ndeps}, size={size}, address={address:#x})"
            )
        records += pack(_KIND_CODES[instruction.kind], ndeps, size, address)
        if deps:
            if max(deps) > 0xFFFFFFFF:
                raise TraceFormatError(
                    f"instruction {instruction.seq} of {trace.name!r} has a "
                    "dependency distance beyond 32 bits"
                )
            deps_pool.extend(deps)
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere we run
        deps_pool.byteswap()
    return layout_bytes, bytes(records), deps_pool.tobytes()


def encode_trace(trace) -> bytes:
    """Serialize ``trace`` to ``.rtrc`` bytes (see the module docstring)."""
    name_bytes = trace.name.encode("utf-8")
    suite_bytes = trace.suite.encode("utf-8")
    if len(name_bytes) > 0xFFFF or len(suite_bytes) > 0xFFFF:
        raise TraceFormatError("trace name/suite longer than 65535 UTF-8 bytes")
    layout_bytes, records, deps_bytes = _encode_body(trace)
    prelude = _PRELUDE.pack(
        RTRC_MAGIC,
        RTRC_VERSION,
        0,
        len(name_bytes),
        len(suite_bytes),
        len(trace.instructions),
        len(deps_bytes) // 4,
        *(getattr(trace.layout, name) for name in _LAYOUT_FIELDS),
    )
    return b"".join((prelude, name_bytes, suite_bytes, records, deps_bytes))


def fingerprint_sections(layout_bytes, records, deps_bytes) -> str:
    """The trace content hash, from its raw ``.rtrc`` byte sections.

    The single definition of the digest recipe: :func:`trace_fingerprint`
    feeds it the sections of an encoded :class:`MemoryTrace`, and the
    columnar view (:mod:`repro.workloads.columnar`) feeds it the very slices
    of the buffer it decoded from — so both views of the same bytes hash
    identically by construction.
    """
    digest = hashlib.sha256()
    digest.update(b"rtrc\x01")
    digest.update(layout_bytes)
    digest.update(records)
    digest.update(deps_bytes)
    return digest.hexdigest()


def trace_fingerprint(trace) -> str:
    """Content hash (sha256 hex) of a trace's instruction stream and layout.

    Stable across processes and re-encodes; independent of the display name
    and suite, so the same ingested file registered twice — even under
    different names — maps to the same hash.
    """
    layout_bytes, records, deps_bytes = _encode_body(trace)
    return fingerprint_sections(layout_bytes, records, deps_bytes)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def read_header(data: bytes) -> dict:
    """Parse and validate the prelude of an ``.rtrc`` payload.

    Returns a dictionary with ``version``, ``name``, ``suite``,
    ``instructions`` (record count), ``deps`` (pool length) and ``layout``
    (field dict) — without touching the record section, so inspecting a huge
    trace costs a header read.
    """
    if len(data) < _PRELUDE.size:
        raise TraceFormatError(
            f"truncated .rtrc header: need {_PRELUDE.size} bytes, got {len(data)}"
        )
    (magic, version, flags, name_len, suite_len, count, deps_len, *layout_values) = (
        _PRELUDE.unpack_from(data)
    )
    if magic != RTRC_MAGIC:
        raise TraceFormatError(f"not an .rtrc trace (bad magic {magic!r})")
    if version != RTRC_VERSION:
        raise TraceFormatError(
            f"unsupported .rtrc version {version} (this build reads version {RTRC_VERSION})"
        )
    if flags != 0:
        raise TraceFormatError(f"unsupported .rtrc flags {flags:#06x}")
    strings_end = _PRELUDE.size + name_len + suite_len
    if len(data) < strings_end:
        raise TraceFormatError("truncated .rtrc header: name/suite cut short")
    name = data[_PRELUDE.size : _PRELUDE.size + name_len].decode("utf-8")
    suite = data[_PRELUDE.size + name_len : strings_end].decode("utf-8")
    return {
        "version": version,
        "name": name,
        "suite": suite,
        "instructions": count,
        "deps": deps_len,
        "layout": dict(zip(_LAYOUT_FIELDS, layout_values)),
        "body_offset": strings_end,
    }


def decode_trace(data: bytes):
    """Rebuild a :class:`~repro.workloads.trace.MemoryTrace` from ``.rtrc`` bytes."""
    from repro.workloads.trace import MemoryTrace

    header = read_header(data)
    count = header["instructions"]
    deps_len = header["deps"]
    records_start = header["body_offset"]
    records_end = records_start + count * _RECORD.size
    deps_end = records_end + deps_len * 4
    if len(data) != deps_end:
        raise TraceFormatError(
            f"truncated or oversized .rtrc body: expected {deps_end} bytes "
            f"({count} records + {deps_len} deps), got {len(data)}"
        )
    deps_pool = array("I")
    deps_pool.frombytes(data[records_end:deps_end])
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere we run
        deps_pool.byteswap()

    instructions = []
    append = instructions.append
    kinds_by_code = _KINDS_BY_CODE
    cursor = 0
    for kind_code, ndeps, size, address in _RECORD.iter_unpack(
        memoryview(data)[records_start:records_end]
    ):
        kind = kinds_by_code.get(kind_code)
        if kind is None:
            raise TraceFormatError(f"unknown .rtrc instruction kind code {kind_code}")
        deps: Tuple[int, ...] = ()
        if ndeps:
            deps = tuple(deps_pool[cursor : cursor + ndeps])
            cursor += ndeps
        append(
            Instruction(
                kind=kind,
                address=address if kind is not InstructionKind.COMPUTE else None,
                size=size,
                deps=deps,
            )
        )
    if cursor != deps_len:
        raise TraceFormatError(
            f"inconsistent .rtrc dependency pool: records consume {cursor} "
            f"entries, pool holds {deps_len}"
        )
    return MemoryTrace(
        name=header["name"],
        instructions=instructions,
        suite=header["suite"],
        layout=AddressLayout(**header["layout"]),
    )


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def dump_rtrc(trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` as an ``.rtrc`` file (``.gz`` paths are compressed)."""
    path = Path(path)
    payload = encode_trace(trace)
    with _open_binary(path, "w") as handle:
        handle.write(payload)
    return path


def load_rtrc(path: Union[str, Path]):
    """Read an ``.rtrc`` file written by :func:`dump_rtrc` (gzip-aware)."""
    with _open_binary(path, "r") as handle:
        data = handle.read()
    try:
        return decode_trace(data)
    except TraceFormatError as error:
        raise TraceFormatError(f"{path}: {error}") from None
