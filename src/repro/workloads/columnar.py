"""Columnar (structure-of-arrays) view of a trace: the simulator's fast path.

:class:`ColumnarTrace` holds the same instruction stream as
:class:`~repro.workloads.trace.MemoryTrace`, but as parallel per-field
columns instead of a list of :class:`~repro.cpu.instruction.Instruction`
objects:

* ``kinds`` / ``ndeps`` — one byte per record (``bytes``), lifted straight
  off the ``.rtrc`` record section with strided slices (one C-level pass per
  column, no per-record Python work);
* ``sizes`` / ``addresses`` — packed ``array('H')`` / ``array('Q')``,
  gathered from the interleaved records by byte-lane slicing (one pass per
  byte lane, eight C calls for the whole address column);
* ``deps_pool`` — the trailing u32 dependency pool as a **zero-copy**
  ``memoryview.cast("I")`` over the original buffer (little-endian hosts;
  big-endian hosts fall back to one byteswapped ``array``).

Decoding from ``.rtrc`` bytes therefore costs a fixed number of bulk byte
operations instead of one ``struct`` tuple plus one ``Instruction.__init__``
per record — that is what campaign pool workers pay on their first cell, and
what ``repro bench``'s ``trace_columnar_decode`` scenario measures.

Batched interpretation
----------------------
The frontends consume the columns in bulk rather than record-at-a-time:

* :meth:`ColumnarTrace.precompute_decompositions` warms the address-layout
  memo over the *distinct* address set (one ``set()`` construction plus one
  ``decompose`` per distinct address — not one per access);
* :meth:`ColumnarTrace.pipeline_arrays` classifies access kinds and resolves
  dependency distances to absolute producer seqs with column passes
  (``bytes`` scans, ``array.tolist``, a regex run-finder over the non-zero
  ``ndeps`` bytes) and is cached per view, shared by every configuration of
  a sweep;
* the pipeline walks sequence numbers as a ``range`` — no per-instruction
  attribute loads at fetch.

Results are **bit-identical** to the object path: the columns carry exactly
the record fields, the pipeline consumes the same seq-indexed arrays either
way, and stateful per-access work (TLB translation, cache banks) still
happens access-by-access inside the interfaces.  The object path remains
available as the differential-testing oracle — select it per call
(``frontend="object"``) or process-wide (``REPRO_TRACE_FRONTEND=object``);
``tests/test_columnar_differential.py`` holds the two frontends to full
``StatCounters``-and-energy equality.

Validation mirrors :func:`repro.workloads.binfmt.decode_trace`: truncated or
oversized bodies, unknown kind codes, zero dependency distances, zero-size
memory accesses and a dependency pool inconsistent with the per-record
``ndeps`` counts all raise :class:`~repro.workloads.binfmt.TraceFormatError`
with the offending record/entry in the message.
"""

from __future__ import annotations

import re
import struct
import sys
from array import array
from itertools import accumulate
from typing import List, Optional, Tuple

from repro.cpu.instruction import Instruction
from repro.memory.address import AddressLayout
from repro.workloads.binfmt import (
    _KINDS_BY_CODE,
    _LAYOUT_FIELDS,
    _PRELUDE,
    _RECORD,
    RTRC_MAGIC,
    RTRC_VERSION,
    TraceFormatError,
    _open_binary,
    fingerprint_sections,
    read_header,
)

#: environment variable selecting the process-wide default frontend
FRONTEND_ENV = "REPRO_TRACE_FRONTEND"

#: recognised frontend names: ``columnar`` (default) and the object-path oracle
FRONTENDS = ("columnar", "object")

#: bytes per ``.rtrc`` record (kind u8, ndeps u8, size u16, address u64)
_RECORD_SIZE = _RECORD.size

#: kind codes are 0/1/2; anything else in the kinds column is corrupt
_VALID_KINDS = b"\x00\x01\x02"

#: finds runs of records that carry dependencies (non-zero ``ndeps`` bytes)
_DEP_RUNS = re.compile(rb"[^\x00]+")

_ZERO_U32 = b"\x00\x00\x00\x00"


def resolve_frontend(explicit: Optional[str] = None) -> str:
    """The trace frontend to use: ``explicit`` arg > environment > default.

    ``explicit`` (a ``frontend=`` parameter or a
    :class:`repro.api.RunOptions` field) wins when given; otherwise the
    *deprecated* ``REPRO_TRACE_FRONTEND`` environment variable is consulted
    through :func:`repro.api.env_fallback` (which emits the
    ``DeprecationWarning``), and the default is ``"columnar"``.  Unknown
    names raise ``ValueError`` so a typo never silently selects the wrong
    path.
    """
    value = explicit
    if value is None:
        # Lazy import: repro.api is a leaf module, but keeping the env
        # plumbing out of module scope keeps import order irrelevant.
        from repro.api import env_fallback

        value = env_fallback(FRONTEND_ENV)
    if value is None or not value.strip():
        return FRONTENDS[0]
    value = value.strip().lower()
    if value not in FRONTENDS:
        raise ValueError(
            f"unknown trace frontend {value!r}: expected one of {FRONTENDS} "
            f"(explicit argument or ${FRONTEND_ENV})"
        )
    return value


def _check_columns(kinds: bytes, ndeps: bytes, sizes, deps_bytes, deps_len: int) -> None:
    """Reject corrupt column content with the offending record in the message."""
    invalid = kinds.translate(None, _VALID_KINDS)
    if invalid:
        index = next(i for i, code in enumerate(kinds) if code > 2)
        raise TraceFormatError(
            f"unknown .rtrc instruction kind code {kinds[index]} (record {index})"
        )
    consumed = sum(ndeps)
    if consumed != deps_len:
        raise TraceFormatError(
            f"inconsistent .rtrc dependency pool: records consume {consumed} "
            f"entries, pool holds {deps_len}"
        )
    # A zero dependency distance is corrupt (distances are positive backward
    # offsets).  Scanning for an *aligned* all-zero u32 stays at C speed: a
    # find() hit that is not itself an aligned entry can only overlap one
    # aligned candidate, which is checked and then skipped past.
    pos = deps_bytes.find(_ZERO_U32)
    while pos != -1:
        start = pos + (-pos % 4)
        if start + 4 <= len(deps_bytes) and deps_bytes[start : start + 4] == _ZERO_U32:
            raise TraceFormatError(
                f"corrupt .rtrc dependency pool: entry {start // 4} is zero "
                "(distances are positive backward offsets)"
            )
        pos = deps_bytes.find(_ZERO_U32, max(start, pos + 1))
    if 0 in sizes:
        for index, size in enumerate(sizes):
            if size == 0 and kinds[index] != 0:
                raise TraceFormatError(
                    f"corrupt .rtrc record {index}: "
                    f"{'load' if kinds[index] == 1 else 'store'} with zero size"
                )


class ColumnarSlice:
    """A contiguous ``[start, stop)`` window of a :class:`ColumnarTrace`.

    What the simulator feeds the pipeline for warm-up/measured portions: it
    carries no copied data — just the parent view plus bounds — and exposes
    the same ``columnar_pipeline_plan`` protocol the pipeline consumes.
    """

    __slots__ = ("trace", "start", "stop")

    def __init__(self, trace: "ColumnarTrace", start: int, stop: int) -> None:
        self.trace = trace
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def columnar_pipeline_plan(self):
        """``(seqs, total, capacity, arrays)`` for the event-driven pipeline."""
        return (
            range(self.start, self.stop),
            self.stop - self.start,
            self.stop,
            self.trace.pipeline_arrays(),
        )

    def materialize_instructions(self) -> List[Instruction]:
        """Instruction objects of this window (cycle-scheduler fallback)."""
        return self.trace.instructions()[self.start : self.stop]

    def __iter__(self):
        return iter(self.materialize_instructions())


class ColumnarTrace:
    """Structure-of-arrays trace view (see the module docstring).

    Build one with :meth:`from_rtrc_bytes` (campaign workers, files) or
    :meth:`from_trace` / :meth:`MemoryTrace.columnar()
    <repro.workloads.trace.MemoryTrace.columnar>` (in-process conversion);
    the constructor itself wires pre-validated columns and is not a public
    entry point.
    """

    __slots__ = (
        "name",
        "suite",
        "layout",
        "kinds",
        "ndeps",
        "sizes",
        "addresses",
        "deps_pool",
        "_record_bytes",
        "_deps_bytes",
        "_dep_offsets",
        "_pipeline_arrays",
        "_instructions",
        "_warmed_layouts",
        "_fingerprint",
    )

    def __init__(
        self,
        name: str,
        suite: str,
        layout: AddressLayout,
        kinds: bytes,
        ndeps: bytes,
        sizes,
        addresses,
        deps_pool,
        record_bytes,
        deps_bytes,
    ) -> None:
        self.name = name
        self.suite = suite
        self.layout = layout
        self.kinds = kinds
        self.ndeps = ndeps
        self.sizes = sizes
        self.addresses = addresses
        self.deps_pool = deps_pool
        self._record_bytes = record_bytes
        self._deps_bytes = deps_bytes
        self._dep_offsets = None
        self._pipeline_arrays = None
        self._instructions = None
        self._warmed_layouts = None
        self._fingerprint = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rtrc_bytes(cls, data) -> "ColumnarTrace":
        """Decode ``.rtrc`` bytes into columns without building Instructions.

        The column lift is a fixed number of strided byte slices (one per
        byte lane), the dependency pool a zero-copy view; validation matches
        :func:`repro.workloads.binfmt.decode_trace` diagnostic-for-diagnostic.
        """
        if not isinstance(data, bytes):
            data = bytes(data)
        header = read_header(data)
        count = header["instructions"]
        deps_len = header["deps"]
        records_start = header["body_offset"]
        records_end = records_start + count * _RECORD_SIZE
        deps_end = records_end + deps_len * 4
        if len(data) != deps_end:
            raise TraceFormatError(
                f"truncated or oversized .rtrc body: expected {deps_end} bytes "
                f"({count} records + {deps_len} deps), got {len(data)}"
            )
        view = memoryview(data)
        # Single-byte columns: one strided slice each.
        kinds = bytes(view[records_start + 0 : records_end : _RECORD_SIZE])
        ndeps = bytes(view[records_start + 1 : records_end : _RECORD_SIZE])
        # Multi-byte columns: gather each byte lane, then reinterpret packed.
        size_lanes = bytearray(2 * count)
        size_lanes[0::2] = view[records_start + 2 : records_end : _RECORD_SIZE]
        size_lanes[1::2] = view[records_start + 3 : records_end : _RECORD_SIZE]
        sizes = array("H")
        sizes.frombytes(size_lanes)
        address_lanes = bytearray(8 * count)
        for lane in range(8):
            address_lanes[lane::8] = view[
                records_start + 4 + lane : records_end : _RECORD_SIZE
            ]
        addresses = array("Q")
        addresses.frombytes(address_lanes)
        deps_bytes = view[records_end:deps_end]
        if sys.byteorder == "little":
            deps_pool = deps_bytes.cast("I")
        else:  # pragma: no cover - LE hosts everywhere we run
            sizes.byteswap()
            addresses.byteswap()
            deps_pool = array("I")
            deps_pool.frombytes(deps_bytes)
            deps_pool.byteswap()
        _check_columns(kinds, ndeps, sizes, bytes(deps_bytes), deps_len)
        return cls(
            name=header["name"],
            suite=header["suite"],
            layout=AddressLayout(**header["layout"]),
            kinds=kinds,
            ndeps=ndeps,
            sizes=sizes,
            addresses=addresses,
            deps_pool=deps_pool,
            record_bytes=view[records_start:records_end],
            deps_bytes=deps_bytes,
        )

    @classmethod
    def from_trace(cls, trace) -> "ColumnarTrace":
        """Columnar view of a :class:`~repro.workloads.trace.MemoryTrace`.

        Goes through the ``.rtrc`` codec, so the columns are by construction
        exactly what a worker decoding shipped bytes would see (and carry
        the same fingerprint).
        """
        from repro.workloads.binfmt import encode_trace

        return cls.from_rtrc_bytes(encode_trace(trace))

    @classmethod
    def load(cls, path) -> "ColumnarTrace":
        """Read an ``.rtrc`` file straight into columns (gzip-aware)."""
        with _open_binary(path, "r") as handle:
            data = handle.read()
        try:
            return cls.from_rtrc_bytes(data)
        except TraceFormatError as error:
            raise TraceFormatError(f"{path}: {error}") from None

    # ------------------------------------------------------------------
    # Container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.kinds)

    def __iter__(self):
        return iter(self.instructions())

    def columnar(self) -> "ColumnarTrace":
        """This view (protocol shared with ``MemoryTrace.columnar()``)."""
        return self

    @property
    def load_count(self) -> int:
        """Number of load records."""
        return self.kinds.count(1)

    @property
    def store_count(self) -> int:
        """Number of store records."""
        return self.kinds.count(2)

    def dep_offsets(self):
        """Prefix sums of ``ndeps``: record ``i`` owns ``pool[off[i]:off[i+1]]``."""
        offsets = self._dep_offsets
        if offsets is None:
            offsets = array("I", [0])
            offsets.extend(accumulate(self.ndeps))
            self._dep_offsets = offsets
        return offsets

    def head(self, count: int) -> "ColumnarTrace":
        """A new columnar view of the first ``count`` records."""
        count = min(count, len(self))
        deps_cut = self.dep_offsets()[count]
        return ColumnarTrace(
            name=self.name,
            suite=self.suite,
            layout=self.layout,
            kinds=self.kinds[:count],
            ndeps=self.ndeps[:count],
            sizes=self.sizes[:count],
            addresses=self.addresses[:count],
            deps_pool=self.deps_pool[:deps_cut],
            record_bytes=self._record_bytes[: count * _RECORD_SIZE],
            deps_bytes=self._deps_bytes[: deps_cut * 4],
        )

    def run_slice(self, start: int, stop: int) -> ColumnarSlice:
        """The ``[start, stop)`` pipeline window (warm-up / measured split)."""
        return ColumnarSlice(self, start, stop)

    # ------------------------------------------------------------------
    # Pipeline protocol
    # ------------------------------------------------------------------
    def columnar_pipeline_plan(self):
        """``(seqs, total, capacity, arrays)`` covering the whole trace."""
        total = len(self.kinds)
        return range(total), total, total, self.pipeline_arrays()

    def materialize_instructions(self) -> List[Instruction]:
        """Instruction objects of the whole trace (cycle-scheduler fallback)."""
        return self.instructions()

    def pipeline_arrays(self):
        """Seq-indexed ``(kinds, addresses, sizes, producers)``; cached.

        Built with column passes: the kinds column is reused as-is (``.rtrc``
        kind codes *are* the pipeline's 0/1/2 encoding), sizes/addresses
        become plain lists in one ``tolist`` call each, and producer tuples
        are resolved only for the records a C-level run-scan over the
        ``ndeps`` bytes says carry dependencies.
        """
        arrays = self._pipeline_arrays
        if arrays is None:
            producers: List[Tuple[int, ...]] = [()] * len(self.kinds)
            ndeps = self.ndeps
            if self._deps_bytes:
                pool = self.deps_pool
                offsets = self.dep_offsets()
                for match in _DEP_RUNS.finditer(ndeps):
                    for seq in range(match.start(), match.end()):
                        base = offsets[seq]
                        producers[seq] = tuple(
                            seq - d
                            for d in pool[base : base + ndeps[seq]]
                            if d <= seq
                        )
            arrays = self._pipeline_arrays = (
                self.kinds,
                self.addresses.tolist(),
                self.sizes.tolist(),
                producers,
            )
        return arrays

    def precompute_decompositions(self, layout: Optional[AddressLayout] = None) -> int:
        """Warm ``layout``'s decomposition memo over the distinct address set.

        The batched counterpart of
        :meth:`~repro.workloads.trace.MemoryTrace.precompute_decompositions`:
        one ``set()`` pass over the address column, one ``decompose`` per
        *distinct* address (the memo is keyed per layout instance, so the
        warm is idempotent and shared across a sweep's configurations).
        Returns the number of memory references, like the object path.
        """
        target = layout if layout is not None else self.layout
        warmed = self._warmed_layouts
        if warmed is None:
            warmed = self._warmed_layouts = {}
        marker = id(target)
        previous = warmed.get(marker)
        if previous is not None and previous[0] is target:
            return previous[1]
        decompose = target.decompose
        for address in set(self.addresses):
            decompose(address)
        count = len(self.kinds) - self.kinds.count(0)
        warmed[marker] = (target, count)
        return count

    # ------------------------------------------------------------------
    # Materialization / round-trip
    # ------------------------------------------------------------------
    def instructions(self) -> List[Instruction]:
        """The object form of every record, in program order (cached)."""
        cached = self._instructions
        if cached is None:
            kinds_by_code = _KINDS_BY_CODE
            pool = self.deps_pool
            offsets = self.dep_offsets()
            sizes = self.sizes
            addresses = self.addresses
            ndeps = self.ndeps
            cached = []
            append = cached.append
            for seq, code in enumerate(self.kinds):
                count = ndeps[seq]
                base = offsets[seq]
                append(
                    Instruction(
                        kind=kinds_by_code[code],
                        address=addresses[seq] if code else None,
                        size=sizes[seq],
                        deps=tuple(pool[base : base + count]) if count else (),
                        seq=seq,
                    )
                )
            self._instructions = cached
        return cached

    def materialize(self):
        """This trace as a :class:`~repro.workloads.trace.MemoryTrace`."""
        from repro.workloads.trace import MemoryTrace

        return MemoryTrace(
            name=self.name,
            instructions=list(self.instructions()),
            suite=self.suite,
            layout=self.layout,
        )

    def to_bytes(self) -> bytes:
        """Re-encode the view as ``.rtrc`` bytes (round-trips bit-identically)."""
        name_bytes = self.name.encode("utf-8")
        suite_bytes = self.suite.encode("utf-8")
        prelude = _PRELUDE.pack(
            RTRC_MAGIC,
            RTRC_VERSION,
            0,
            len(name_bytes),
            len(suite_bytes),
            len(self.kinds),
            len(self._deps_bytes) // 4,
            *(getattr(self.layout, field) for field in _LAYOUT_FIELDS),
        )
        return b"".join(
            (prelude, name_bytes, suite_bytes, self._record_bytes, self._deps_bytes)
        )

    def fingerprint(self) -> str:
        """Content hash — bit-equal to the object path's ``trace_fingerprint``."""
        cached = self._fingerprint
        if cached is None:
            layout_bytes = struct.pack(
                "<7I", *(getattr(self.layout, field) for field in _LAYOUT_FIELDS)
            )
            cached = self._fingerprint = fingerprint_sections(
                layout_bytes, self._record_bytes, self._deps_bytes
            )
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ColumnarTrace(name={self.name!r}, instructions={len(self)}, "
            f"loads={self.load_count}, stores={self.store_count})"
        )
