"""Streaming ingestion of externally captured memory traces.

The paper evaluates MALEC on *traced* application workloads; this module
opens the simulator to the same kind of input.  Three text formats parse
into :class:`~repro.workloads.trace.MemoryTrace` objects:

``lackey``
    valgrind's ``--tool=lackey --trace-mem=yes`` output: one access per
    line, ``I addr,size`` (instruction fetch), `` L addr,size`` (data load),
    `` S addr,size`` (data store), `` M addr,size`` (modify = load+store).
    Instruction fetches become compute instructions — the simulator models
    the data side, the fetch only occupies the pipeline.  valgrind banner
    lines (``==pid==`` / ``--pid--``) are skipped.

``din``
    The classic Dinero/DineroIV format: ``<label> <hexaddress>`` per line
    with label ``0`` read, ``1`` write, ``2`` instruction fetch; extra
    columns are ignored.  Accesses default to 4 bytes (the format carries no
    size).

``csv``
    This repository's documented dialect: a ``kind,address,size,deps``
    header, then one instruction per row.  ``kind`` is ``load``/``store``/
    ``compute``; ``address`` accepts decimal or ``0x`` hex; ``size``
    defaults to 4; ``deps`` is a ``;``-separated list of backward distances.

All parsers stream line by line (constant memory), accept gzip-compressed
files transparently and report malformed input with the offending line
number.  :func:`load_trace` sniffs the format from the file extension and
also reads the ``.rtrc``/``.jsonl`` formats the repository itself writes.

Trace transforms compose ingestion into experiment-ready workloads:
:func:`window` (region of interest), :func:`skip_warmup`, :func:`subsample`
(stride sampling) and :func:`interleave` (round-robin merging of several
traces into one multiprogrammed workload, with dependency distances remapped
exactly across the interleaving).
"""

from __future__ import annotations

import csv as _csv
import time
from pathlib import Path
from typing import IO, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cpu.instruction import Instruction, InstructionKind
from repro.memory.address import DEFAULT_LAYOUT, AddressLayout
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger
from repro.workloads.binfmt import load_rtrc
from repro.workloads.registry import (  # noqa: F401  (re-exported API)
    TraceHandle,
    register_trace,
    registered_handle,
    registered_names,
    registered_trace,
)
from repro.workloads.trace import MemoryTrace, _open_text as _open_trace_text

logger = get_logger(__name__)

#: text-format names accepted by :func:`parse_lines` / the ``--format`` flag
TEXT_FORMATS = ("lackey", "din", "csv")

#: every format :func:`load_trace` reads
TRACE_FORMATS = TEXT_FORMATS + ("rtrc", "jsonl")

#: extension -> format sniffing table (``.gz`` is stripped first)
_EXTENSION_FORMATS = {
    ".lackey": "lackey",
    ".vgtrace": "lackey",
    ".trace": "lackey",
    ".din": "din",
    ".csv": "csv",
    ".rtrc": "rtrc",
    ".jsonl": "jsonl",
}


class TraceParseError(ValueError):
    """A malformed line in an external trace file (message carries line number)."""


def _open_text(path: Union[str, Path]) -> IO[str]:
    """Read-mode wrapper over the trace module's gzip-aware text opener."""
    return _open_trace_text(path, "r")


def _clone(instruction: Instruction) -> Instruction:
    """A fresh copy of ``instruction`` with an unassigned sequence number."""
    return Instruction(
        kind=instruction.kind,
        address=instruction.address,
        size=instruction.size,
        deps=instruction.deps,
    )


# ----------------------------------------------------------------------
# Text-format parsers (streaming, line-numbered diagnostics)
# ----------------------------------------------------------------------
def parse_lackey(
    lines: Iterable[str],
    name: str = "lackey",
    layout: AddressLayout = DEFAULT_LAYOUT,
    source: str = "<lackey>",
) -> MemoryTrace:
    """Parse valgrind lackey ``--trace-mem`` output into a trace."""
    instructions: List[Instruction] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("==", "--")):
            continue
        try:
            op, rest = stripped.split(None, 1)
            address_text, size_text = rest.split(",", 1)
            address = int(address_text, 16)
            size = int(size_text.strip(), 10)
        except ValueError:
            raise TraceParseError(
                f"{source}: line {number}: malformed lackey record {stripped!r} "
                "(expected 'I|L|S|M address,size')"
            ) from None
        if size <= 0:
            raise TraceParseError(
                f"{source}: line {number}: non-positive access size {size}"
            )
        if op == "I":
            instructions.append(Instruction(kind=InstructionKind.COMPUTE))
        elif op == "L":
            instructions.append(
                Instruction(kind=InstructionKind.LOAD, address=address, size=size)
            )
        elif op == "S":
            instructions.append(
                Instruction(kind=InstructionKind.STORE, address=address, size=size)
            )
        elif op == "M":
            # A modify is a load followed by a store of the same location.
            instructions.append(
                Instruction(kind=InstructionKind.LOAD, address=address, size=size)
            )
            instructions.append(
                Instruction(kind=InstructionKind.STORE, address=address, size=size)
            )
        else:
            raise TraceParseError(
                f"{source}: line {number}: unknown lackey operation {op!r} "
                "(expected I, L, S or M)"
            )
    return MemoryTrace(name=name, instructions=instructions, layout=layout)


def parse_dinero(
    lines: Iterable[str],
    name: str = "din",
    layout: AddressLayout = DEFAULT_LAYOUT,
    source: str = "<din>",
) -> MemoryTrace:
    """Parse a Dinero ``.din`` reference stream into a trace."""
    instructions: List[Instruction] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise TraceParseError(
                f"{source}: line {number}: malformed din record {stripped!r} "
                "(expected '<label> <hexaddress>')"
            )
        label = parts[0]
        try:
            address = int(parts[1], 16)
        except ValueError:
            raise TraceParseError(
                f"{source}: line {number}: bad din address {parts[1]!r}"
            ) from None
        if label == "0":
            instructions.append(
                Instruction(kind=InstructionKind.LOAD, address=address, size=4)
            )
        elif label == "1":
            instructions.append(
                Instruction(kind=InstructionKind.STORE, address=address, size=4)
            )
        elif label == "2":
            instructions.append(Instruction(kind=InstructionKind.COMPUTE))
        else:
            raise TraceParseError(
                f"{source}: line {number}: unknown din label {label!r} "
                "(expected 0=read, 1=write, 2=ifetch)"
            )
    return MemoryTrace(name=name, instructions=instructions, layout=layout)


def parse_csv(
    lines: Iterable[str],
    name: str = "csv",
    layout: AddressLayout = DEFAULT_LAYOUT,
    source: str = "<csv>",
) -> MemoryTrace:
    """Parse the documented ``kind,address,size,deps`` CSV dialect."""
    reader = _csv.reader(lines)
    try:
        header = next(reader)
    except StopIteration:
        raise TraceParseError(f"{source}: empty file (expected a CSV header)") from None
    columns = [column.strip().lower() for column in header]
    if "kind" not in columns or "address" not in columns:
        raise TraceParseError(
            f"{source}: line 1: CSV header must name 'kind' and 'address' "
            f"columns, got {columns}"
        )
    kind_at = columns.index("kind")
    address_at = columns.index("address")
    size_at = columns.index("size") if "size" in columns else None
    deps_at = columns.index("deps") if "deps" in columns else None

    def cell(row: List[str], index: Optional[int]) -> str:
        if index is None or index >= len(row):
            return ""
        return row[index].strip()

    instructions: List[Instruction] = []
    for number, row in enumerate(reader, start=2):
        if not row or all(not field.strip() for field in row):
            continue
        kind_text = cell(row, kind_at).lower()
        try:
            deps_text = cell(row, deps_at)
            deps: Tuple[int, ...] = (
                tuple(int(part) for part in deps_text.split(";") if part.strip())
                if deps_text
                else ()
            )
            if kind_text == "compute":
                instructions.append(Instruction(kind=InstructionKind.COMPUTE, deps=deps))
                continue
            kind = {"load": InstructionKind.LOAD, "store": InstructionKind.STORE}[kind_text]
            address = int(cell(row, address_at), 0)
            size_text = cell(row, size_at)
            size = int(size_text, 0) if size_text else 4
            instructions.append(
                Instruction(kind=kind, address=address, size=size, deps=deps)
            )
        except (KeyError, ValueError):
            raise TraceParseError(
                f"{source}: line {number}: malformed CSV instruction {row!r} "
                "(kind must be load/store/compute with a valid address/size/deps)"
            ) from None
    return MemoryTrace(name=name, instructions=instructions, layout=layout)


_TEXT_PARSERS = {
    "lackey": parse_lackey,
    "din": parse_dinero,
    "csv": parse_csv,
}


# ----------------------------------------------------------------------
# Format sniffing and the central loader
# ----------------------------------------------------------------------
def sniff_format(path: Union[str, Path]) -> Optional[str]:
    """The trace format implied by ``path``'s extension (``None`` if unknown)."""
    name = Path(path).name
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    return _EXTENSION_FORMATS.get(Path(name).suffix.lower())


def load_trace(
    path: Union[str, Path],
    fmt: str = "auto",
    name: Optional[str] = None,
    layout: AddressLayout = DEFAULT_LAYOUT,
) -> MemoryTrace:
    """Load a trace from any supported format (gzip-aware).

    ``fmt`` is one of :data:`TRACE_FORMATS` or ``"auto"`` (sniff from the
    extension).  ``name`` overrides the trace's display name (text formats
    default to the file stem; ``.rtrc``/``.jsonl`` embed their own).
    """
    path = Path(path)
    if fmt == "auto":
        fmt = sniff_format(path)
        if fmt is None:
            raise TraceParseError(
                f"{path}: cannot infer the trace format from the extension; "
                f"pass an explicit format from {', '.join(TRACE_FORMATS)}"
            )
    started = time.perf_counter()
    if fmt == "rtrc":
        trace = load_rtrc(path)
    elif fmt == "jsonl":
        trace = MemoryTrace.from_jsonl(path)
    elif fmt in _TEXT_PARSERS:
        stem = path.name[: -len(".gz")] if path.name.endswith(".gz") else path.name
        default_name = Path(stem).stem
        with _open_text(path) as handle:
            trace = _TEXT_PARSERS[fmt](
                handle, name=default_name, layout=layout, source=str(path)
            )
    else:
        raise TraceParseError(
            f"unknown trace format {fmt!r}; choose from {', '.join(TRACE_FORMATS)}"
        )
    elapsed = time.perf_counter() - started
    logger.debug(
        "ingest: loaded %d records from %s (%s) in %.3fs",
        len(trace),
        path,
        fmt,
        elapsed,
    )
    if obs_metrics.enabled():
        registry = obs_metrics.registry
        registry.counter("ingest.records").inc(len(trace))
        registry.counter("ingest.files").inc()
        registry.gauge("ingest.records_per_sec").set(
            len(trace) / elapsed if elapsed > 0 else 0.0
        )
    if name is not None:
        trace.name = name
    return trace


# ----------------------------------------------------------------------
# Transforms
# ----------------------------------------------------------------------
def window(trace: MemoryTrace, start: int, stop: Optional[int] = None) -> MemoryTrace:
    """The region-of-interest slice ``[start, stop)`` of ``trace``.

    Dependency distances are kept as-is; distances that point before the
    window start are ignored at dispatch (the pipeline's normal rule for
    trace-relative producers), exactly as with warm-up slicing.
    """
    if start < 0:
        raise ValueError("window start must be >= 0")
    sliced = [_clone(i) for i in trace.instructions[start:stop]]
    return MemoryTrace(
        name=trace.name, instructions=sliced, suite=trace.suite, layout=trace.layout
    )


def skip_warmup(trace: MemoryTrace, count: int) -> MemoryTrace:
    """Drop the first ``count`` instructions (external warm-up phases)."""
    if count < 0:
        raise ValueError("warm-up skip count must be >= 0")
    return window(trace, count)


def subsample(trace: MemoryTrace, stride: int) -> MemoryTrace:
    """Keep every ``stride``-th instruction (stride sampling for long traces).

    Dependency annotations are dropped: their backward distances refer to
    instructions the sampling removed.
    """
    if stride < 1:
        raise ValueError("subsample stride must be >= 1")
    if stride == 1:
        return window(trace, 0)
    sampled = [
        Instruction(kind=i.kind, address=i.address, size=i.size)
        for i in trace.instructions[::stride]
    ]
    return MemoryTrace(
        name=trace.name, instructions=sampled, suite=trace.suite, layout=trace.layout
    )


def interleave(
    traces: Sequence[MemoryTrace],
    granularity: int = 64,
    name: Optional[str] = None,
) -> MemoryTrace:
    """Round-robin interleave several traces into one multiprogrammed workload.

    Chunks of ``granularity`` instructions are taken from each trace in turn
    until all are exhausted (shorter traces simply drop out).  Dependency
    distances are remapped *exactly*: every producer/consumer pair of a
    source trace still links the same two instructions in the merged trace,
    however many foreign chunks the interleaving put between them.

    The merged trace uses the first trace's address layout (interleaving
    traces captured under different layouts is not meaningful).
    """
    if not traces:
        raise ValueError("interleave needs at least one trace")
    if granularity < 1:
        raise ValueError("interleave granularity must be >= 1")
    merged: List[Instruction] = []
    cursors = [0] * len(traces)
    out_positions: List[List[int]] = [[0] * len(trace) for trace in traces]
    while True:
        emitted = False
        for index, trace in enumerate(traces):
            start = cursors[index]
            stop = min(start + granularity, len(trace))
            if start >= stop:
                continue
            emitted = True
            positions = out_positions[index]
            source = trace.instructions
            for at in range(start, stop):
                instruction = source[at]
                out_seq = len(merged)
                positions[at] = out_seq
                deps = instruction.deps
                if deps:
                    deps = tuple(
                        out_seq - positions[at - distance]
                        for distance in deps
                        if at - distance >= 0
                    )
                merged.append(
                    Instruction(
                        kind=instruction.kind,
                        address=instruction.address,
                        size=instruction.size,
                        deps=deps,
                    )
                )
            cursors[index] = stop
        if not emitted:
            break
    return MemoryTrace(
        name=name or "+".join(trace.name for trace in traces),
        instructions=merged,
        suite="mix",
        layout=traces[0].layout,
    )
