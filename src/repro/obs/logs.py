"""Run-scoped stdlib logging for the library modules.

Library code (`workloads`, `campaign`, `dse`, ...) reports through loggers
obtained from :func:`get_logger` instead of writing to stdout — stdout stays
reserved for CLI *output* (tables, figures, JSON).  The CLI calls
:func:`configure` exactly once, translating its ``--verbose``/``--quiet``/
``--log-json`` flags into a stderr handler; embedders that never call it get
stdlib default behaviour (warnings and up, plain format), so importing repro
as a library stays silent and unconfigured.

Every record carries a **run context** — a short string like ``sweep:fig4-mini``
set via :func:`run_context` around an entry point — so interleaved lines from
pool workers and the parent remain attributable.  The context travels via a
:class:`contextvars.ContextVar`, which is inherited across threads at creation
and re-established in pool initialisers.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import sys
from typing import Iterator, Optional

__all__ = ["get_logger", "configure", "run_context", "current_run_context"]

#: root of the library's logger namespace
ROOT_LOGGER = "repro"

_run_context: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_run_context", default="-"
)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``name`` is the module)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def current_run_context() -> str:
    """The active run context string (``-`` when none is set)."""
    return _run_context.get()


@contextlib.contextmanager
def run_context(context: str) -> Iterator[None]:
    """Scope all log records inside the block to ``context``."""
    token = _run_context.set(context)
    try:
        yield
    finally:
        _run_context.reset(token)


def set_run_context(context: str) -> None:
    """Set the run context without scoping (pool-worker initialisers)."""
    _run_context.set(context)


class _ContextFilter(logging.Filter):
    """Injects the run context into every record as ``run``."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.run = _run_context.get()
        return True


class _JsonFormatter(logging.Formatter):
    """One JSON object per line — machine-ingestable log stream."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "run": getattr(record, "run", "-"),
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


_TEXT_FORMAT = "%(levelname)s %(name)s [%(run)s] %(message)s"


def configure(
    verbose: bool = False,
    quiet: bool = False,
    json_lines: bool = False,
    stream=None,
) -> logging.Logger:
    """Install the CLI's logging handler on the ``repro`` logger.

    ``verbose`` lowers the threshold to DEBUG, ``quiet`` raises it to ERROR
    (quiet wins when both are passed); the default is INFO.  ``json_lines``
    switches the formatter to one-JSON-object-per-line.  Logs go to ``stream``
    (default stderr) so stdout stays clean for CLI output.  Idempotent:
    reconfiguring replaces the previously installed handler.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    if quiet:
        level = logging.ERROR
    elif verbose:
        level = logging.DEBUG
    else:
        level = logging.INFO
    logger.setLevel(level)
    logger.propagate = False
    for handler in [h for h in logger.handlers if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    handler.addFilter(_ContextFilter())
    if json_lines:
        handler.setFormatter(_JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(_TEXT_FORMAT))
    logger.addHandler(handler)
    return logger


def configured() -> bool:
    """True when :func:`configure` has installed a handler."""
    logger = logging.getLogger(ROOT_LOGGER)
    return any(getattr(h, "_repro_obs", False) for h in logger.handlers)


def reset() -> None:
    """Remove obs-installed handlers (test isolation)."""
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in [h for h in logger.handlers if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True
