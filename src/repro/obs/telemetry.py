"""Durable campaign telemetry: the per-cell journal and cross-run queries.

PR 6 made a single run observable; everything it measures evaporates at
process exit.  This module is the durable layer underneath ROADMAP item 2
(sweep-as-a-service): every campaign execution appends its telemetry to a
``telemetry.jsonl`` journal living **next to the campaign ResultStore**, so
the store accumulates not only results but also the operational history of
how they were produced — queryable later by ``repro obs history`` /
``compare`` / ``cells`` / ``export`` without re-running anything.

Journal format — JSON lines, three record shapes sharing ``record`` +
``run_id`` (pinned by ``telemetry_record.schema.json`` next to this module,
validated with the same mini JSON-Schema validator the trace-event export
uses):

``run_start``
    One header per execution: campaign name, host block (shared with the
    bench harness via :mod:`repro.obs.hostinfo`), total cells, job count.
``cell``
    One line per cell the run touched: cell/config/trace content hashes,
    wall seconds, worker pid, kernel used / fallback reason, scheduler and
    trace frontend, and whether the result was computed or served from the
    store.
``run_end``
    One footer per execution: totals, elapsed wall time, cells/sec, kernel
    fallback tally, and the run's merged metrics registry dump — which is
    what ``repro obs export`` renders as OpenMetrics text after the fact.

Writes are **append-only and atomic per line**: each record is a single
``os.write`` to an ``O_APPEND`` descriptor, so concurrent writers (several
sweeps sharing one store) interleave whole lines, never partial ones, and a
crash can only ever truncate the final line — which the reader tolerates.
Like all of ``repro.obs`` the journal is opt-in and operational-only:
nothing here feeds result records, so simulation output stays bit-identical
with telemetry on or off.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.hostinfo import host_metadata
from repro.obs.traceevent import SchemaError, validate_payload

__all__ = [
    "JOURNAL_NAME",
    "SCHEMA_PATH",
    "SCHEMA_VERSION",
    "TelemetryJournal",
    "JournalRun",
    "load_schema",
    "validate_record",
    "read_journal",
    "load_runs",
    "resolve_journal",
    "resolve_run",
    "format_history",
    "compare_runs",
    "format_compare",
    "slowest_cells",
    "format_cells",
    "parse_openmetrics",
]

#: journal filename, created next to the campaign store's ``campaign.json``
JOURNAL_NAME = "telemetry.jsonl"

#: the checked-in schema every journal line must satisfy
SCHEMA_PATH = Path(__file__).parent / "telemetry_record.schema.json"

#: current journal record schema version (stamped into ``run_start``)
SCHEMA_VERSION = 1


def load_schema(path: Union[str, Path] = SCHEMA_PATH) -> dict:
    """Load the checked-in telemetry-record schema."""
    return json.loads(Path(path).read_text())


def validate_record(record: dict, schema: Optional[dict] = None) -> None:
    """Validate one journal record; raises :class:`SchemaError` on violation."""
    if schema is None:
        schema = load_schema()
    validate_payload(record, schema, "$")


def new_run_id() -> str:
    """A sortable, collision-safe run identifier (timestamp + random tail)."""
    return time.strftime("%Y%m%dT%H%M%S") + "-" + uuid.uuid4().hex[:6]


class TelemetryJournal:
    """Append-only writer for one execution's telemetry records.

    The executor drives the three-phase protocol: :meth:`run_start` once,
    :meth:`cell` per touched cell, :meth:`run_end` once.  Each record is
    serialised to a single line and appended with one ``os.write`` on an
    ``O_APPEND`` descriptor — POSIX guarantees append writes are atomic
    with respect to other appenders, so multiple processes can share one
    journal without interleaving partial lines.
    """

    def __init__(self, path: Union[str, Path], run_id: Optional[str] = None) -> None:
        self.path = Path(path)
        self.run_id = run_id or new_run_id()
        self.records_written = 0

    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        self.records_written += 1

    # ------------------------------------------------------------------
    def run_start(self, campaign: str, cells_total: int, jobs: int) -> None:
        """Write the run header (host block, totals, job count)."""
        self._append(
            {
                "record": "run_start",
                "run_id": self.run_id,
                "schema": SCHEMA_VERSION,
                "campaign": campaign,
                "started": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "host": host_metadata(),
                "cells_total": int(cells_total),
                "jobs": int(jobs),
            }
        )

    def cell(self, **fields: object) -> None:
        """Write one per-cell record (fields per the journal schema)."""
        record = {"record": "cell", "run_id": self.run_id}
        record.update(fields)
        self._append(record)

    def serve_request(
        self, method: str, path: str, status: int, wall_seconds: float
    ) -> None:
        """Write one served-HTTP-request record (``repro serve`` handling).

        Serve sessions share the journal with the sweeps they trigger: each
        submitted campaign runs under its own ``run_id`` (header, cells,
        footer as usual), while the request handling itself is journaled as
        ``serve_request`` lines under the server's session id.
        """
        self._append(
            {
                "record": "serve_request",
                "run_id": self.run_id,
                "method": str(method),
                "path": str(path),
                "status": int(status),
                "wall_seconds": max(0.0, float(wall_seconds)),
            }
        )

    def run_end(
        self,
        cells_computed: int,
        cells_skipped: int,
        elapsed_seconds: float,
        kernel_fallbacks: Optional[Dict[str, int]] = None,
        metrics: Optional[dict] = None,
    ) -> None:
        """Write the run footer (totals, rate, fallback tally, metrics dump)."""
        total = int(cells_computed) + int(cells_skipped)
        record: Dict[str, object] = {
            "record": "run_end",
            "run_id": self.run_id,
            "finished": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "cells_total": total,
            "cells_computed": int(cells_computed),
            "cells_skipped": int(cells_skipped),
            "elapsed_seconds": float(elapsed_seconds),
            "cells_per_sec": (
                total / float(elapsed_seconds) if elapsed_seconds > 0 else 0.0
            ),
        }
        if kernel_fallbacks:
            record["kernel_fallbacks"] = dict(kernel_fallbacks)
        if metrics is not None:
            record["metrics"] = metrics
        self._append(record)


# ----------------------------------------------------------------------
# Reading & grouping
# ----------------------------------------------------------------------
@dataclass
class JournalRun:
    """One execution reconstructed from the journal: header, cells, footer."""

    run_id: str
    header: Optional[dict] = None
    footer: Optional[dict] = None
    cells: List[dict] = field(default_factory=list)

    @property
    def started(self) -> str:
        return str((self.header or {}).get("started", ""))

    @property
    def host(self) -> dict:
        block = (self.header or {}).get("host")
        return block if isinstance(block, dict) else {}

    @property
    def computed_cells(self) -> List[dict]:
        """Cells this run actually simulated (store hits excluded)."""
        return [cell for cell in self.cells if cell.get("source") == "computed"]

    def kernel_fallback_count(self) -> int:
        """Total kernel fallbacks across the run (footer tally, else cells)."""
        tally = (self.footer or {}).get("kernel_fallbacks")
        if isinstance(tally, dict):
            return sum(int(v) for v in tally.values())
        return sum(
            1 for cell in self.computed_cells if cell.get("kernel_fallback_reason")
        )


def read_journal(path: Union[str, Path]) -> List[dict]:
    """Every parseable record in a journal file, in file order.

    A truncated final line (crash mid-append) is skipped silently; a corrupt
    line elsewhere raises — that means the file is not a journal.
    """
    records: List[dict] = []
    lines = Path(path).read_text().splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break
            raise
        records.append(record)
    return records


def resolve_journal(path: Union[str, Path]) -> Path:
    """Map a store (URL, directory, live object) or journal file onto the
    journal path.

    Accepts a live store (anything with a ``telemetry_path``), a store URL
    (``json:dir`` / ``sqlite:db`` — resolved without touching the
    filesystem), the journal file itself, a campaign store directory (the
    journal sits next to ``campaign.json``), or a path ending in the
    journal name that does not exist yet — the CLI reports that cleanly.
    """
    telemetry = getattr(path, "telemetry_path", None)
    if telemetry is not None:
        return Path(telemetry)
    text = str(path)
    if text.startswith("sqlite:"):
        db = Path(text[len("sqlite:"):])
        return db.with_name(db.name + ".telemetry.jsonl")
    if text.startswith("json:"):
        return Path(text[len("json:"):]) / JOURNAL_NAME
    candidate = Path(text)
    if candidate.is_dir():
        return candidate / JOURNAL_NAME
    return candidate


def load_runs(path: Union[str, Path]) -> List[JournalRun]:
    """All runs in a journal, grouped by ``run_id``, in first-seen order."""
    runs: Dict[str, JournalRun] = {}
    order: List[str] = []
    for record in read_journal(path):
        kind = record.get("record")
        if kind not in ("run_start", "run_end", "cell"):
            # Other record shapes sharing the journal (serve_request lines
            # from `repro serve`) are not campaign executions.
            continue
        run_id = str(record.get("run_id", ""))
        if run_id not in runs:
            runs[run_id] = JournalRun(run_id=run_id)
            order.append(run_id)
        run = runs[run_id]
        if kind == "run_start":
            run.header = record
        elif kind == "run_end":
            run.footer = record
        else:
            run.cells.append(record)
    return [runs[run_id] for run_id in order]


def resolve_run(runs: List[JournalRun], token: str) -> JournalRun:
    """Find one run by token: ``last``, ``prev``, or a unique run-id prefix."""
    if not runs:
        raise ValueError("journal contains no runs")
    if token == "last":
        return runs[-1]
    if token == "prev":
        if len(runs) < 2:
            raise ValueError("journal contains only one run; no 'prev'")
        return runs[-2]
    matches = [run for run in runs if run.run_id.startswith(token)]
    if not matches:
        known = ", ".join(run.run_id for run in runs)
        raise ValueError(f"no run matching {token!r}; journal has: {known}")
    if len(matches) > 1:
        ambiguous = ", ".join(run.run_id for run in matches)
        raise ValueError(f"{token!r} is ambiguous: {ambiguous}")
    return matches[0]


# ----------------------------------------------------------------------
# Queries (repro obs history / compare / cells / export)
# ----------------------------------------------------------------------
def format_history(runs: List[JournalRun]) -> str:
    """Tabulate every run in the journal: when, host, totals, rate, fallbacks."""
    from repro.analysis.reporting import format_table

    if not runs:
        return "journal contains no runs"
    rows: List[List[object]] = []
    for run in runs:
        footer = run.footer or {}
        host = run.host
        host_label = (
            f"{host.get('machine', '?')}/{host.get('cpu_count', '?')}cpu"
            if host
            else "?"
        )
        rate = footer.get("cells_per_sec")
        rows.append(
            [
                run.run_id,
                run.started or "?",
                host_label,
                footer.get("cells_computed", len(run.computed_cells)),
                footer.get("cells_skipped", "?"),
                f"{rate:.2f}" if isinstance(rate, (int, float)) else "?",
                run.kernel_fallback_count(),
            ]
        )
    return format_table(
        ["run", "started", "host", "computed", "skipped", "cells/s", "fallbacks"],
        rows,
    )


def compare_runs(
    run_a: JournalRun, run_b: JournalRun, threshold_pct: float = 20.0
) -> dict:
    """Per-cell wall-time deltas between two runs of the same campaign.

    Only cells *computed* in both runs are compared — a store hit costs a
    probe, not a simulation, so its wall time says nothing about the code.
    Returns the per-cell rows (sorted by slowdown, worst first), the cells
    present on one side only, and the rows beyond ``threshold_pct``.
    """
    cells_a = {c["key"]: c for c in run_a.computed_cells if "key" in c}
    cells_b = {c["key"]: c for c in run_b.computed_cells if "key" in c}
    common = sorted(set(cells_a) & set(cells_b))
    rows = []
    for key in common:
        a, b = cells_a[key], cells_b[key]
        seconds_a = float(a.get("wall_seconds", 0.0))
        seconds_b = float(b.get("wall_seconds", 0.0))
        delta_pct = (
            (seconds_b / seconds_a - 1.0) * 100.0 if seconds_a > 0 else 0.0
        )
        rows.append(
            {
                "key": key,
                "benchmark": a.get("benchmark", "?"),
                "config": a.get("config", "?"),
                "a_seconds": seconds_a,
                "b_seconds": seconds_b,
                "delta_pct": delta_pct,
            }
        )
    rows.sort(key=lambda row: -row["delta_pct"])
    return {
        "run_a": run_a.run_id,
        "run_b": run_b.run_id,
        "cells": rows,
        "only_a": sorted(set(cells_a) - set(cells_b)),
        "only_b": sorted(set(cells_b) - set(cells_a)),
        "regressions": [row for row in rows if row["delta_pct"] > threshold_pct],
        "threshold_pct": threshold_pct,
    }


def format_compare(comparison: dict) -> str:
    """Human rendering of :func:`compare_runs` (worst slowdown first)."""
    from repro.analysis.reporting import format_table

    lines = [f"compare {comparison['run_a']} -> {comparison['run_b']}"]
    rows = comparison["cells"]
    if not rows:
        lines.append(
            "no cells computed in both runs (store hits are not comparable)"
        )
    else:
        table_rows = [
            [
                row["benchmark"],
                row["config"],
                f"{row['a_seconds'] * 1000.0:.1f}",
                f"{row['b_seconds'] * 1000.0:.1f}",
                f"{row['delta_pct']:+.1f}%",
            ]
            for row in rows
        ]
        lines.append(
            format_table(
                ["benchmark", "config", "a (ms)", "b (ms)", "delta"], table_rows
            )
        )
    for side, keys in (("A", comparison["only_a"]), ("B", comparison["only_b"])):
        if keys:
            lines.append(f"{len(keys)} cell(s) computed only in run {side}")
    regressions = comparison["regressions"]
    if regressions:
        lines.append(
            f"{len(regressions)} cell(s) slower than "
            f"+{comparison['threshold_pct']:g}%:"
        )
        for row in regressions:
            lines.append(
                f"  {row['benchmark']}/{row['config']}: {row['delta_pct']:+.1f}%"
            )
    return "\n".join(lines)


def slowest_cells(run: JournalRun, limit: int = 10) -> List[dict]:
    """The run's computed cells, slowest first, capped at ``limit``."""
    cells = sorted(
        run.computed_cells,
        key=lambda cell: -float(cell.get("wall_seconds", 0.0)),
    )
    return cells[: max(0, limit)]


def format_cells(run: JournalRun, cells: List[dict]) -> str:
    """Human rendering of :func:`slowest_cells`."""
    from repro.analysis.reporting import format_table

    if not cells:
        return f"run {run.run_id}: no computed cells"
    rows = [
        [
            cell.get("benchmark", "?"),
            cell.get("config", "?"),
            f"{float(cell.get('wall_seconds', 0.0)) * 1000.0:.1f}",
            cell.get("worker_pid", "?"),
            cell.get("kernel_used", "?"),
            cell.get("kernel_fallback_reason") or "-",
        ]
        for cell in cells
    ]
    header = f"run {run.run_id}: {len(cells)} slowest computed cells"
    return header + "\n" + format_table(
        ["benchmark", "config", "ms", "pid", "kernel", "fallback"], rows
    )


# ----------------------------------------------------------------------
# OpenMetrics round-trip check
# ----------------------------------------------------------------------
def parse_openmetrics(text: str) -> Dict[str, float]:
    """Parse OpenMetrics text back into ``{sample_name: value}``.

    A deliberately strict reader of the subset
    :func:`repro.obs.metrics.render_openmetrics` emits — the CI smoke job
    and tests use it to assert the export actually parses.  Bucket samples
    keep their label (``name_bucket{le="0.5"}``) in the key.  Raises
    ``ValueError`` on malformed lines or a missing ``# EOF`` terminator.
    """
    samples: Dict[str, float] = {}
    saw_eof = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"content after # EOF: {line!r}")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "TYPE":
                raise ValueError(f"unrecognised comment line: {line!r}")
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {line!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(f"non-numeric sample value in: {line!r}") from None
        if name_part in samples:
            raise ValueError(f"duplicate sample: {name_part!r}")
        samples[name_part] = value
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return samples


def _journal_schema_errors(
    path: Union[str, Path], schema: Optional[dict] = None
) -> List[Tuple[int, str]]:
    """(record number, message) for every schema-invalid journal record."""
    if schema is None:
        schema = load_schema()
    errors: List[Tuple[int, str]] = []
    for number, record in enumerate(read_journal(path), start=1):
        try:
            validate_record(record, schema)
        except SchemaError as error:
            errors.append((number, str(error)))
    return errors
