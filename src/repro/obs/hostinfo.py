"""Host identity facts shared by the bench harness and the telemetry journal.

Two timing records are only comparable when they were taken on the same
machine, core count and interpreter — so both the perf harness
(``BENCH_*.json``) and the campaign telemetry journal (``telemetry.jsonl``)
stamp every record with the same host block, produced here.  ``repro bench
--compare`` and ``repro obs compare`` both warn on mismatches instead of
silently comparing apples to oranges.

This lives in ``repro.obs`` (not ``repro.bench``) so the telemetry layer can
import it without pulling in the bench scenarios, which import the campaign
executor — the executor is exactly the module that writes the journal.
"""

from __future__ import annotations

import os
import platform
import subprocess
from typing import Optional

__all__ = ["detect_revision", "host_metadata"]


def detect_revision(default: str = "worktree") -> str:
    """Short git revision of the working tree, or ``default`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else default


def host_metadata(revision: Optional[str] = None) -> dict:
    """The host facts that make two timing records (in)comparable.

    Recorded in every bench report and every telemetry run header;
    comparison commands warn when they differ, because a timing delta
    between different machines, core counts or interpreter versions
    measures the hosts, not the code.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "revision": revision if revision is not None else detect_revision(),
    }
