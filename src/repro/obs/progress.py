"""TTY progress reporting for campaign/DSE runs.

:class:`ProgressReporter` adapts the executor's
``progress(event, cell, done, total)`` callback into a single self-updating
stderr line — ``[done/total] 42% 12.3 cells/s eta 0:00:07 run gzip malec`` —
when stderr is an interactive terminal, and into nothing at all otherwise
(CI logs and redirected output stay clean; pass ``fallback_lines=True`` to
get the old one-line-per-cell stream there instead).  ``quiet`` silences it
entirely.

The reporter is careful about the one thing a ``\\r``-rewriting line can
break: trailing garbage when the new line is shorter than the old.  It pads
to the previous width and ends with :meth:`finish`, which moves to a fresh
line so subsequent output starts clean.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional

__all__ = ["ProgressReporter", "make_progress"]


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """Renders executor progress callbacks onto a terminal.

    Parameters
    ----------
    stream:
        Destination (default ``sys.stderr``).
    fallback_lines:
        When the stream is not a TTY, emit one plain line per event instead
        of staying silent (the executor's historical behaviour).
    min_interval:
        Minimum seconds between repaints of the TTY line; completion events
        beyond this rate coalesce, keeping terminal I/O off the hot path.
    """

    def __init__(
        self,
        stream=None,
        fallback_lines: bool = False,
        min_interval: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.fallback_lines = fallback_lines
        self.min_interval = min_interval
        self._clock = clock
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._start: Optional[float] = None
        self._last_paint = 0.0
        self._last_width = 0
        self._done = 0
        self._total = 0

    # ------------------------------------------------------------------
    @property
    def interactive(self) -> bool:
        """True when rendering the self-updating TTY line."""
        return self._is_tty

    def __call__(self, event: str, cell, done: int, total: int) -> None:
        """The executor-facing callback: ``progress(event, cell, done, total)``."""
        now = self._clock()
        if self._start is None:
            self._start = now
        self._done, self._total = done, total
        if not self._is_tty:
            if self.fallback_lines:
                label = f"{cell.benchmark} {cell.config.name}" if cell else ""
                self.stream.write(f"[{done}/{total}] {event} {label}\n")
            return
        final = done >= total
        if not final and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        elapsed = now - self._start
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = (total - done) / rate if rate > 0 else 0.0
        percent = 100.0 * done / total if total else 100.0
        label = f"{event} {cell.benchmark} {cell.config.name}" if cell else event
        line = (
            f"[{done}/{total}] {percent:3.0f}% "
            f"{rate:.1f} cells/s eta {_format_eta(remaining)} {label}"
        )
        pad = max(0, self._last_width - len(line))
        self._last_width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def finish(self) -> None:
        """Terminate the in-place line (no-op when nothing was drawn)."""
        if self._is_tty and self._last_width:
            self.stream.write("\n")
            self.stream.flush()
            self._last_width = 0


def make_progress(
    quiet: bool = False, stream=None, fallback_lines: bool = True
) -> Optional[ProgressReporter]:
    """The CLI's one-liner: a reporter, or ``None`` when ``quiet``."""
    if quiet:
        return None
    return ProgressReporter(stream=stream, fallback_lines=fallback_lines)
