"""Per-run observation collector: cycle categories and sampled occupancy.

A :class:`RunCollector` rides along one pipeline run (attach it through
``Simulator.run(..., collector=...)`` or ``run_configuration``).  The
event-driven loop classifies every *simulated* cycle into exactly one
category and, every ``sample_every`` counted cycles, snapshots the occupancy
of the pipeline-visible structures (ROB, load queue, store buffer, merge
buffer).  Both feed the two obs views:

* the cycle-attribution report (:mod:`repro.obs.attribution`) — the
  categories below partition the run, so their counts **sum to the total
  cycle count** by construction;
* the sampled simulator timeline (:mod:`repro.obs.traceevent`) — the
  occupancy series render as Chrome trace-event counter tracks over the
  cycle axis.

Categories (one per cycle, first match wins):

``commit``
    At least one instruction committed this cycle (the machine made
    architectural progress).
``issue``
    No commit, but at least one instruction issued (work entered the
    backend).
``frontend``
    No commit/issue, but instructions were fetched/dispatched (the front
    end was filling the window).
``memory_wait``
    Nothing issued or committed while the L1 interface was actively
    servicing accesses — the classic cache/DRAM shadow.
``buffer_stall``
    Nothing happened and ready memory ops sat deferred — blocked on
    address-computation slots or full load-queue/store-buffer structures.
``idle_wait``
    A fully quiet cycle the loop still simulated (waiting on a future
    completion without jumping).
``fast_forwarded``
    Cycles the event scheduler skipped outright (idle stretches jumped in
    one step); attributed here, never simulated.

Collection is strictly additive: the collector never touches the
:class:`~repro.stats.StatCounters` results, so attaching one cannot perturb
golden bit-identity (the obs-off identity tests pin this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["RunCollector", "CYCLE_CATEGORIES"]

#: category names in presentation order (also the attribution row order)
CYCLE_CATEGORIES: Tuple[str, ...] = (
    "commit",
    "issue",
    "frontend",
    "memory_wait",
    "buffer_stall",
    "idle_wait",
    "fast_forwarded",
)


class RunCollector:
    """Collects cycle categories and occupancy samples for one run.

    Parameters
    ----------
    sample_every:
        Snapshot structure occupancy every N *counted* cycles (0 disables
        sampling; categories are always collected).  Samples cover only
        simulated cycles — fast-forwarded stretches appear as gaps, which
        is the honest rendering (nothing moved during them).
    """

    def __init__(self, sample_every: int = 0) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.sample_every = sample_every
        #: category -> cycle count (every category always present)
        self.cycle_categories: Dict[str, int] = {
            name: 0 for name in CYCLE_CATEGORIES
        }
        #: (cycle, rob, load_queue, store_buffer, merge_buffer) samples
        self.samples: List[Tuple[int, int, int, int, int]] = []
        #: events dispatched through the run's event wheel (incl. the
        #: next-cycle bucket, which is the wheel's one-cycle fast path)
        self.events_dispatched = 0
        #: total cycles of the run as the pipeline reported them
        self.total_cycles = 0
        #: committed instructions
        self.instructions = 0

    # ------------------------------------------------------------------
    # Pipeline-facing API (called once per run, from flush paths)
    # ------------------------------------------------------------------
    def record_categories(
        self,
        commit: int,
        issue: int,
        frontend: int,
        memory_wait: int,
        buffer_stall: int,
        idle_wait: int,
        fast_forwarded: int,
    ) -> None:
        """Flush the per-category cycle counts accumulated in loop locals."""
        categories = self.cycle_categories
        categories["commit"] += commit
        categories["issue"] += issue
        categories["frontend"] += frontend
        categories["memory_wait"] += memory_wait
        categories["buffer_stall"] += buffer_stall
        categories["idle_wait"] += idle_wait
        categories["fast_forwarded"] += fast_forwarded

    def record_run(self, total_cycles: int, instructions: int, events: int) -> None:
        """Record run totals (cycle count, instruction count, wheel events)."""
        self.total_cycles += total_cycles
        self.instructions += instructions
        self.events_dispatched += events

    def sample(self, cycle: int, rob: int, lq: int, sb: int, mb: int) -> None:
        """Record one occupancy snapshot at ``cycle``."""
        self.samples.append((cycle, rob, lq, sb, mb))

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    @property
    def attributed_cycles(self) -> int:
        """Sum over all categories (equals ``total_cycles`` after a run)."""
        return sum(self.cycle_categories.values())

    def category_fractions(self) -> Dict[str, float]:
        """Per-category share of the attributed cycles (0.0 when empty)."""
        total = self.attributed_cycles
        if not total:
            return {name: 0.0 for name in CYCLE_CATEGORIES}
        return {
            name: count / total for name, count in self.cycle_categories.items()
        }
