"""Lightweight counter/gauge/histogram registry (no-op when disabled).

The simulator's :class:`~repro.stats.StatCounters` are *results*: they feed
the energy model and the golden bit-identity net, so nothing operational may
ever leak into them.  This registry is the operational side — how fast cells
complete, how many events the wheel dispatched, how utilised the workers
were — kept in a completely separate namespace that is **off by default**
and never serialised into result records.

Design constraints:

* **Disabled means free.**  Hot code never consults the registry per event;
  instrumentation points aggregate in locals (or already-existing state) and
  flush into the registry once per run/cell/batch, guarded by a single
  :func:`enabled` check at the boundary.  The <2% disabled-overhead bench
  gate in CI holds the subsystem to this.
* **No global mutable surprises.**  The default registry is module-level for
  convenience (the CLI and executor share it), but everything operates on an
  explicit :class:`MetricsRegistry` so tests can use private instances.
* **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot` renders
  sorted, JSON-able output so emitted metrics can be asserted and diffed.

Naming follows the ``<subsystem>.<metric>`` convention of the stat counters
(``campaign.cells_completed``, ``wheel.events_dispatched``, ...).
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "enabled",
    "enable",
    "disable",
    "render_openmetrics",
]


class Counter:
    """A monotonically increasing value (events seen, cells completed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways (cells/sec, occupancy)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount


#: default histogram buckets: powers of two from 1us-ish scales upward work
#: for both durations (seconds) and sizes; callers pass their own when the
#: default is a poor fit
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Histogram:
    """A bucketed distribution (cell durations, batch sizes).

    Cumulative bucket counts plus running sum/count/min/max — enough to
    report rates, averages and tail shape without keeping every sample.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent per
    name, like the stat counters' ``handle``); asking for an existing name
    with a different instrument kind raises, so a typo never silently forks
    a metric.  Thread-safe: the executor updates metrics from the thread
    draining pool results while the CLI may snapshot concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: type, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind(name, *args)
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get_or_create(name, Histogram, buckets)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-able snapshot of every metric, sorted by name.

        Counters/gauges render as plain numbers; histograms as a dictionary
        with ``count``/``sum``/``mean``/``min``/``max`` and the cumulative
        per-bucket counts.
        """
        with self._lock:
            out: Dict[str, object] = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if isinstance(metric, (Counter, Gauge)):
                    out[name] = metric.value
                else:
                    assert isinstance(metric, Histogram)
                    out[name] = {
                        "count": metric.count,
                        "sum": metric.sum,
                        "mean": metric.mean,
                        "min": metric.min,
                        "max": metric.max,
                        "buckets": dict(
                            zip(
                                [str(b) for b in metric.buckets] + ["+Inf"],
                                metric.bucket_counts,
                            )
                        ),
                    }
            return out

    def dump(self) -> Dict[str, dict]:
        """Typed, JSON-able state of every metric, sorted by name.

        Unlike :meth:`snapshot` (a human/diff-friendly rendering that
        collapses counters and gauges to plain numbers), ``dump`` keeps the
        instrument kind so another registry can :meth:`merge` it without
        guessing — this is the wire format pool workers ship back to the
        campaign parent and the journal footer persists.
        """
        with self._lock:
            out: Dict[str, dict] = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if isinstance(metric, Counter):
                    out[name] = {"kind": "counter", "value": metric.value}
                elif isinstance(metric, Gauge):
                    out[name] = {"kind": "gauge", "value": metric.value}
                else:
                    assert isinstance(metric, Histogram)
                    out[name] = {
                        "kind": "histogram",
                        "buckets": list(metric.buckets),
                        "bucket_counts": list(metric.bucket_counts),
                        "count": metric.count,
                        "sum": metric.sum,
                        "min": metric.min,
                        "max": metric.max,
                    }
            return out

    def merge(self, dump: Dict[str, dict]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Deterministic and order-independent across a *set* of dumps:
        counters sum, gauges keep the maximum observed value, histograms
        merge bucket-wise (bucket bounds must match exactly — a mismatch
        raises ``ValueError`` rather than silently misbinning).  Merging the
        same dumps in any order therefore yields an identical registry,
        which is what makes a ``jobs=4`` metrics snapshot reproducible even
        though pool results arrive in a nondeterministic order.
        """
        for name in sorted(dump):
            entry = dump[name]
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(name).inc(float(entry["value"]))
            elif kind == "gauge":
                gauge = self.gauge(name)
                gauge.set(max(gauge.value, float(entry["value"])))
            elif kind == "histogram":
                histogram = self.histogram(name, tuple(entry["buckets"]))
                if list(histogram.buckets) != list(entry["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ: "
                        f"{list(histogram.buckets)} vs {list(entry['buckets'])}"
                    )
                with self._lock:
                    for index, count in enumerate(entry["bucket_counts"]):
                        histogram.bucket_counts[index] += int(count)
                    histogram.count += int(entry["count"])
                    histogram.sum += float(entry["sum"])
                    for bound_name, pick in (("min", min), ("max", max)):
                        incoming = entry.get(bound_name)
                        if incoming is None:
                            continue
                        current = getattr(histogram, bound_name)
                        setattr(
                            histogram,
                            bound_name,
                            incoming if current is None else pick(current, incoming),
                        )
            else:
                raise ValueError(f"metric {name!r} has unknown kind {kind!r}")

    def snapshot_openmetrics(self) -> str:
        """The registry rendered as OpenMetrics text (see
        :func:`render_openmetrics`)."""
        return render_openmetrics(self.dump())

    def clear(self) -> None:
        """Drop every metric (test isolation / fresh runs)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


def _openmetrics_name(name: str) -> str:
    """Map a dotted metric name onto the OpenMetrics charset.

    ``campaign.cells_completed`` -> ``campaign_cells_completed``; anything
    outside ``[a-zA-Z0-9_:]`` becomes ``_``, and a leading digit gets an
    underscore prefix so the result is always a valid exposition name.
    """
    sanitized = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch in "_:")) else "_" for ch in name
    )
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _openmetrics_number(value: float) -> str:
    """Render a sample value: whole floats without the trailing ``.0``."""
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def render_openmetrics(dump: Dict[str, dict]) -> str:
    """Render a :meth:`MetricsRegistry.dump` as OpenMetrics text exposition.

    The subset external scrapers (Prometheus and friends) understand:
    ``# TYPE`` metadata, ``_total`` counter samples, gauges, and histograms
    with cumulative ``le``-labelled buckets plus ``_count``/``_sum``,
    terminated by ``# EOF``.  Deterministic: names render sorted, so the
    same registry state always produces byte-identical text.
    """
    lines: List[str] = []
    for name in sorted(dump):
        entry = dump[name]
        om_name = _openmetrics_name(name)
        kind = entry.get("kind")
        if kind == "counter":
            lines.append(f"# TYPE {om_name} counter")
            lines.append(f"{om_name}_total {_openmetrics_number(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {om_name} gauge")
            lines.append(f"{om_name} {_openmetrics_number(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {om_name} histogram")
            cumulative = 0
            bounds = [str(bound) for bound in entry["buckets"]] + ["+Inf"]
            for bound, count in zip(bounds, entry["bucket_counts"]):
                cumulative += int(count)
                lines.append(f'{om_name}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f"{om_name}_count {int(entry['count'])}")
            lines.append(f"{om_name}_sum {_openmetrics_number(entry['sum'])}")
        else:
            raise ValueError(f"metric {name!r} has unknown kind {kind!r}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


#: the process-wide default registry the CLI and executor share
registry = MetricsRegistry()

#: module-level switch; instrumentation boundaries check this exactly once
#: per run/cell/batch (never per event)
_ENABLED = False


def enabled() -> bool:
    """True when metrics collection is switched on for this process."""
    return _ENABLED


def enable() -> None:
    """Switch metrics collection on (idempotent)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Switch metrics collection off; already-collected values survive."""
    global _ENABLED
    _ENABLED = False
