"""repro.obs — observability for the sim/campaign/DSE stack.

Everything here is *operational* visibility, strictly separated from the
scientific results: nothing in this package writes into
:class:`~repro.stats.StatCounters`, result records, or stored campaign
cells, so enabling any of it cannot perturb golden bit-identity (the obs
identity tests pin this).  Everything is opt-in and off by default, and
the CI bench gate bounds the disabled overhead below 2%.

Four pillars, one module each:

:mod:`repro.obs.metrics`
    Counter/gauge/histogram registry (cells/sec, wheel events, worker
    utilisation); no-op unless :func:`repro.obs.metrics.enable` ran.
:mod:`repro.obs.collector` / :mod:`repro.obs.attribution`
    Per-run cycle classification (categories partition the run and sum to
    total cycles) plus energy-per-structure breakdowns — the ``repro
    report`` command.
:mod:`repro.obs.traceevent`
    Chrome trace-event (catapult) JSON export — wall-clock campaign/DSE
    spans and sampled simulator timelines — with a checked-in schema and a
    dependency-free validator.
:mod:`repro.obs.logs` / :mod:`repro.obs.progress` / :mod:`repro.obs.profile`
    Run-scoped stdlib logging behind ``--verbose/--quiet/--log-json``, the
    TTY progress line for sweeps, and ``repro profile`` (cProfile +
    collapsed stacks over the bench scenarios).

Plus the durable layer on top (PR 9):

:mod:`repro.obs.telemetry` / :mod:`repro.obs.hostinfo`
    The append-only per-cell ``telemetry.jsonl`` journal written next to
    every campaign store, the cross-run ``repro obs`` queries
    (history/compare/cells/export), and the shared host-identity block the
    bench harness stamps into its reports.
"""

from repro.obs import metrics, telemetry
from repro.obs.hostinfo import detect_revision, host_metadata
from repro.obs.attribution import RunAttribution, attribute_run, format_attribution
from repro.obs.collector import CYCLE_CATEGORIES, RunCollector
from repro.obs.logs import configure as configure_logging
from repro.obs.logs import get_logger, run_context
from repro.obs.progress import ProgressReporter, make_progress
from repro.obs.traceevent import (
    SCHEMA_PATH,
    SchemaError,
    TraceEventLog,
    validate_trace_events,
)

__all__ = [
    "metrics",
    "telemetry",
    "detect_revision",
    "host_metadata",
    "RunAttribution",
    "attribute_run",
    "format_attribution",
    "CYCLE_CATEGORIES",
    "RunCollector",
    "configure_logging",
    "get_logger",
    "run_context",
    "ProgressReporter",
    "make_progress",
    "SCHEMA_PATH",
    "SchemaError",
    "TraceEventLog",
    "validate_trace_events",
]
