"""``repro profile``: cProfile over the bench scenarios, flamegraph-ready.

Reuses the :mod:`repro.bench` scenario functions as profiling workloads —
the same code the perf harness times is the code worth profiling, and using
one definition keeps "what we measure" and "what we optimise" the same
thing.  Each profile run executes the scenario once (repeats would only
smear the profile) under :mod:`cProfile` and renders two views:

* a ``pstats`` top-N table (cumulative time), printed to stdout;
* a **collapsed-stack** file (``caller;callee count`` lines, the input
  format of Brendan Gregg's ``flamegraph.pl`` and of speedscope's
  "Brendan Gregg" importer) via ``--collapsed FILE``.

cProfile records a caller->callee graph, not full stacks, so the collapsed
output expands each edge into a two-frame stack weighted by the callee's own
time on that edge.  That is an approximation of a true stack profile —
widths are exact per edge, nesting deeper than two frames is not — but it
is enough to eyeball where the simulator's self-time concentrates, with
zero new dependencies.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro import bench

__all__ = ["PROFILE_SCENARIOS", "run_profile", "collapsed_stacks", "format_profile"]

#: scenario name -> callable(instructions) running the workload once.
#: Pool-based scenarios are excluded: cProfile cannot see into child
#: processes, so profiling them would show only pickling overhead.
PROFILE_SCENARIOS: Dict[str, Callable[[int], object]] = {
    "trace_generation": lambda n: bench.bench_trace_generation(n, repeats=1),
    "single_config_run": lambda n: bench.bench_single_config_run(n, repeats=1),
    "fig4_mini_sweep_serial": lambda n: bench.bench_fig4_mini_sweep_serial(
        n, repeats=1
    ),
    "figure4_gzip_djpeg_mcf": lambda n: bench.bench_figure4_acceptance(n, repeats=1),
    "trace_decode_rtrc": lambda n: bench.bench_trace_decode(n, repeats=1),
}


def _frame_label(func: Tuple[str, int, str]) -> str:
    """``module.py:name`` label for one pstats function key."""
    filename, lineno, name = func
    if filename == "~":
        return f"<built-in>:{name}"
    return f"{Path(filename).name}:{name}"


def collapsed_stacks(stats: pstats.Stats, scale: float = 1e6) -> List[str]:
    """Render pstats data as collapsed-stack lines (``stack count``).

    One line per caller->callee edge, weighted by the callee's *own* time
    attributed to that edge (microseconds by default); root functions (no
    recorded caller) emit a single-frame line.  Zero-weight edges are
    dropped — flamegraph renderers ignore them anyway.
    """
    lines: List[str] = []
    for func, (_cc, _nc, tottime, _cumtime, callers) in stats.stats.items():
        label = _frame_label(func)
        if not callers:
            weight = int(tottime * scale)
            if weight > 0:
                lines.append(f"{label} {weight}")
            continue
        for caller, (_ccc, _cnc, caller_tottime, _cct) in callers.items():
            weight = int(caller_tottime * scale)
            if weight > 0:
                lines.append(f"{_frame_label(caller)};{label} {weight}")
    return sorted(lines)


def format_profile(stats: pstats.Stats, top: int = 25) -> str:
    """The pstats cumulative-time top-N table as a string."""
    buffer = io.StringIO()
    stats.stream = buffer
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def run_profile(
    scenario: str,
    instructions: int = 4000,
    top: int = 25,
    collapsed_out: Optional[Union[str, Path]] = None,
) -> Tuple[str, int]:
    """Profile one bench scenario; returns (report text, stack-line count).

    Raises ``KeyError`` for unknown scenarios — callers render the
    :data:`PROFILE_SCENARIOS` listing as the usage message.
    """
    workload = PROFILE_SCENARIOS[scenario]
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        workload(instructions)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    report = format_profile(stats, top=top)
    lines = collapsed_stacks(stats)
    if collapsed_out is not None:
        target = Path(collapsed_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(lines) + "\n" if lines else "")
    return report, len(lines)
