"""Chrome trace-event (catapult) JSON export, plus schema validation.

:class:`TraceEventLog` accumulates events in the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto and ``chrome://tracing`` and writes the standard
``{"traceEvents": [...]}`` JSON object.  Two producers use it:

* the campaign/DSE layer emits **wall-clock spans** — one complete event
  (``ph: "X"``) per executed cell, grouped by worker process, with instant
  events (``ph: "i"``) marking halving-rung boundaries and counter tracks
  for store hits;
* ``repro report --timeline`` emits a **sampled simulator timeline** — the
  occupancy series a :class:`~repro.obs.collector.RunCollector` gathered,
  rendered as counter events (``ph: "C"``) over the cycle axis (1 cycle =
  1 us, so the viewer's time axis reads directly in cycles).

The emitted shape is pinned by ``trace_event.schema.json`` next to this
module (checked in, validated by the tests and the CI obs-smoke job).
:func:`validate_trace_events` checks a payload against that schema with a
small built-in validator — the repository deliberately adds no third-party
dependency for this; the subset of JSON Schema the validator understands
(type/properties/required/items/enum) is exactly what the schema uses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

__all__ = [
    "TraceEventLog",
    "SCHEMA_PATH",
    "load_schema",
    "validate_payload",
    "validate_trace_events",
    "SchemaError",
]

#: the checked-in schema every emitted trace must satisfy
SCHEMA_PATH = Path(__file__).parent / "trace_event.schema.json"


class TraceEventLog:
    """An in-memory trace-event collection with typed append helpers.

    Timestamps (``ts``/``dur``) are microseconds, per the format.  Producers
    pick their own time base: wall-clock spans use epoch microseconds,
    simulator timelines use *cycles* as microseconds (a pure relabeling that
    makes the viewer's axis read in cycles).
    """

    def __init__(self) -> None:
        self.events: List[dict] = []
        self._named_processes: Dict[int, str] = {}
        self._named_threads: Dict[tuple, str] = {}

    # ------------------------------------------------------------------
    # Metadata (names shown by the viewer)
    # ------------------------------------------------------------------
    def name_process(self, pid: int, name: str) -> None:
        """Label process ``pid`` in the viewer (idempotent)."""
        if self._named_processes.get(pid) == name:
            return
        self._named_processes[pid] = name
        self.events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        """Label thread ``tid`` of process ``pid`` in the viewer (idempotent)."""
        if self._named_threads.get((pid, tid)) == name:
            return
        self._named_threads[(pid, tid)] = name
        self.events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    # ------------------------------------------------------------------
    # Event appenders
    # ------------------------------------------------------------------
    def add_span(
        self,
        name: str,
        category: str,
        ts_us: float,
        dur_us: float,
        pid: int = 0,
        tid: int = 0,
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """One complete event (``ph: "X"``): a bar from ``ts`` for ``dur``."""
        event = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": ts_us,
            "dur": max(0.0, dur_us),
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def add_instant(
        self,
        name: str,
        category: str,
        ts_us: float,
        pid: int = 0,
        tid: int = 0,
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """One instant event (``ph: "i"``, thread scope): a vertical marker."""
        event = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "ts": ts_us,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def add_counter(
        self,
        name: str,
        category: str,
        ts_us: float,
        series: Mapping[str, float],
        pid: int = 0,
    ) -> None:
        """One counter sample (``ph: "C"``): stacked series at ``ts``."""
        self.events.append(
            {
                "name": name,
                "cat": category,
                "ph": "C",
                "ts": ts_us,
                "pid": pid,
                "tid": 0,
                "args": dict(series),
            }
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def as_dict(self) -> dict:
        """The standard JSON object shape (``traceEvents`` + time unit)."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.as_dict(), sort_keys=True)

    def write(self, path: Union[str, Path]) -> Path:
        """Write the trace JSON to ``path`` (parents created); returns it."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")
        return target


# ----------------------------------------------------------------------
# Schema validation (dependency-free subset of JSON Schema)
# ----------------------------------------------------------------------
class SchemaError(ValueError):
    """A payload violated the trace-event schema (message carries the path)."""


def load_schema(path: Union[str, Path] = SCHEMA_PATH) -> dict:
    """Load the checked-in trace-event schema."""
    return json.loads(Path(path).read_text())


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def _validate(value, schema: dict, path: str) -> None:
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[kind](value) for kind in allowed):
            raise SchemaError(
                f"{path}: expected {'/'.join(allowed)}, got {type(value).__name__}"
            )
    if "enum" in schema and value not in schema["enum"]:
        raise SchemaError(f"{path}: {value!r} not one of {schema['enum']}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                raise SchemaError(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, subschema in properties.items():
            if name in value:
                _validate(value[name], subschema, f"{path}.{name}")
    if isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for index, item in enumerate(value):
                _validate(item, items, f"{path}[{index}]")
    minimum = schema.get("minimum")
    if minimum is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < minimum:
            raise SchemaError(f"{path}: {value} below minimum {minimum}")


def validate_payload(value, schema: dict, path: str = "$") -> None:
    """Validate any JSON value against a mini-schema (shared entry point).

    The same dependency-free subset :func:`validate_trace_events` uses
    (type/properties/required/items/enum/minimum), exposed for other
    checked-in schemas — the telemetry journal validates its records
    against ``telemetry_record.schema.json`` through this.  Raises
    :class:`SchemaError` on the first violation.
    """
    _validate(value, schema, path)


def validate_trace_events(
    payload: Union[dict, str], schema: Optional[dict] = None
) -> int:
    """Validate a trace-event payload; returns the number of events.

    ``payload`` is the ``{"traceEvents": [...]}`` object (or its JSON
    string).  Raises :class:`SchemaError` on the first violation, with a
    JSON-path-style location in the message.
    """
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as error:
            raise SchemaError(f"payload is not valid JSON: {error}") from None
    if schema is None:
        schema = load_schema()
    _validate(payload, schema, "$")
    return len(payload["traceEvents"])
