"""Cycle and energy attribution: "where did the time/energy go" for one run.

Assembles the answer from three existing sources — the per-cycle categories
a :class:`~repro.obs.collector.RunCollector` gathered, the
:class:`~repro.stats.StatCounters` snapshot every
:class:`~repro.sim.simulator.SimulationResult` already carries, and the
per-structure :class:`~repro.energy.accounting.EnergyReport` — and renders
them with the same aligned-table helpers the rest of the analysis layer
uses.  ``repro report`` prints these; nothing here feeds back into results.

The cycle categories partition the run (each simulated or skipped cycle is
counted exactly once), so the breakdown's rows **sum to the total cycle
count** — the invariant the obs test suite and the CI obs-smoke job assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.obs.collector import CYCLE_CATEGORIES, RunCollector
from repro.sim.simulator import SimulationResult

__all__ = ["RunAttribution", "attribute_run", "format_attribution"]

#: human-readable blurb per cycle category (report footnotes)
_CATEGORY_NOTES: Dict[str, str] = {
    "commit": "instructions retired",
    "issue": "issued, nothing retired",
    "frontend": "fetch/dispatch only",
    "memory_wait": "waiting on L1/L2/DRAM",
    "buffer_stall": "slots or buffers full",
    "idle_wait": "simulated idle cycle",
    "fast_forwarded": "idle stretch skipped",
}


@dataclass
class RunAttribution:
    """Cycle and energy breakdown of one (configuration, trace) run."""

    benchmark: str
    config_name: str
    total_cycles: int
    instructions: int
    #: category -> cycles, every category of CYCLE_CATEGORIES present
    cycles: Dict[str, int] = field(default_factory=dict)
    #: structure -> (dynamic_pj, leakage_pj)
    energy: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: events the run dispatched through the event wheel (0 if uncollected)
    events_dispatched: int = 0
    #: derived rates lifted off the stat counters (ipc, miss rates, ...)
    rates: Dict[str, float] = field(default_factory=dict)

    @property
    def attributed_cycles(self) -> int:
        """Sum of every category — must equal ``total_cycles``."""
        return sum(self.cycles.values())

    def check(self) -> None:
        """Raise ``ValueError`` unless the categories partition the run."""
        if self.attributed_cycles != self.total_cycles:
            raise ValueError(
                f"{self.benchmark}/{self.config_name}: attributed "
                f"{self.attributed_cycles} cycles != total {self.total_cycles}"
            )

    def as_dict(self) -> dict:
        """JSON-able form (the obs-smoke CI job validates this shape)."""
        return {
            "benchmark": self.benchmark,
            "config": self.config_name,
            "total_cycles": self.total_cycles,
            "instructions": self.instructions,
            "cycles": dict(self.cycles),
            "energy_pj": {
                name: {"dynamic": dyn, "leakage": leak}
                for name, (dyn, leak) in self.energy.items()
            },
            "events_dispatched": self.events_dispatched,
            "rates": dict(self.rates),
        }


def attribute_run(
    benchmark: str,
    result: SimulationResult,
    collector: Optional[RunCollector] = None,
) -> RunAttribution:
    """Build the attribution of one finished run.

    With a ``collector`` (a run observed through the event-driven loop) the
    cycle rows are the collector's categories.  Without one — e.g. when
    attributing a stored result after the fact — the only honest partition
    available from the result's counters is total cycles, reported as one
    ``unattributed`` row; energy and rate rows are always available.
    """
    attribution = RunAttribution(
        benchmark=benchmark,
        config_name=result.config_name,
        total_cycles=result.cycles,
        instructions=result.instructions,
    )
    if collector is not None:
        attribution.cycles = dict(collector.cycle_categories)
        attribution.events_dispatched = collector.events_dispatched
    else:
        attribution.cycles = {name: 0 for name in CYCLE_CATEGORIES}
        attribution.cycles["unattributed"] = result.cycles
    for name, structure in sorted(result.energy.structures.items()):
        attribution.energy[name] = (structure.dynamic_pj, structure.leakage_pj)
    attribution.rates = {
        "ipc": result.ipc,
        "l1_load_miss_rate": result.l1_load_miss_rate,
        "way_coverage": result.way_coverage,
        "merged_load_fraction": result.merged_load_fraction,
        "leakage_share": result.energy.leakage_share,
    }
    return attribution


def format_attribution(attribution: RunAttribution) -> str:
    """Aligned text rendering of one run's cycle and energy breakdown."""
    lines = [
        f"{attribution.benchmark} / {attribution.config_name}: "
        f"{attribution.total_cycles} cycles, "
        f"{attribution.instructions} instructions "
        f"(ipc {attribution.rates.get('ipc', 0.0):.3f})"
    ]
    total = attribution.total_cycles
    rows: List[List[object]] = []
    for name, count in attribution.cycles.items():
        share = count / total if total else 0.0
        rows.append([name, count, share, _CATEGORY_NOTES.get(name, "")])
    rows.append(["TOTAL", attribution.attributed_cycles, 1.0 if total else 0.0, ""])
    lines.append(format_table(["cycles go to", "cycles", "share", ""], rows))
    if attribution.energy:
        energy_rows: List[List[object]] = []
        total_dyn = sum(dyn for dyn, _ in attribution.energy.values())
        total_leak = sum(leak for _, leak in attribution.energy.values())
        for name, (dyn, leak) in attribution.energy.items():
            energy_rows.append([name, dyn, leak, dyn + leak])
        energy_rows.append(["TOTAL", total_dyn, total_leak, total_dyn + total_leak])
        lines.append("")
        lines.append(
            format_table(
                ["energy goes to", "dynamic [pJ]", "leakage [pJ]", "total [pJ]"],
                energy_rows,
                float_format="{:.1f}",
            )
        )
    if attribution.events_dispatched:
        lines.append("")
        lines.append(
            f"event wheel: {attribution.events_dispatched} completion events "
            f"dispatched ({attribution.events_dispatched / total:.3f}/cycle)"
            if total
            else f"event wheel: {attribution.events_dispatched} events"
        )
    return "\n".join(lines)
