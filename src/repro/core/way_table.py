"""Page-Based Way Determination (Sec. V of the paper).

Way tables hold, for every page covered by a TLB level, a 2-bit code per
cache line of that page combining validity and way information.  Because one
specific way per line group is declared "unknown" (the code 0), the remaining
three ways plus "unknown" fit in 2 bits, shrinking a 64-line entry to 128 bits
instead of the naive 192 bits (64 x (1 valid + 2 way) bits).

Two way tables exist, mirroring the two TLB levels (Fig. 3):

* the **uWT** sits next to the 16-entry uTLB and is read on every uTLB hit —
  a hit returns the way codes for *all* lines of the page, so a whole group
  of same-page accesses is serviced by a single read;
* the **WT** sits next to the 64-entry TLB and holds entries for every TLB
  resident page; it refills the uWT on uTLB misses and absorbs uWT entries
  written back on uTLB evictions.

Validity bits are set on cache line fills and cleared on evictions, located
through *reverse* (physical) TLB lookups.  When the uWT predicts "unknown"
but the subsequent conventional access hits, the hit way is fed back through
the *last-entry register* without a second uTLB lookup; Sec. V reports this
feedback raises coverage from 75 % to 94 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters
from repro.tlb.tlb import TLB, TLBEntry, TLBHierarchy


@dataclass
class WayPrediction:
    """Result of consulting the way tables for one cache line.

    ``known`` distinguishes a *determination* (the line is guaranteed to be in
    ``way``, the tag arrays can be bypassed) from "unknown" (fall back to a
    conventional access).  ``source`` records which structure produced the
    prediction (``uwt``, ``wt`` or ``none``) for the coverage statistics.
    """

    known: bool
    way: Optional[int] = None
    source: str = "none"


#: (banks, associativity, lines_per_page) -> per-line encode/decode tables
_CODEC_CACHE: dict = {}


def _codec_tables(layout: AddressLayout):
    """Per-line encode/decode tables for the 2-bit way codes.

    ``decode[line][code]`` is the physical way (or ``None`` for code 0) and
    ``encode[line][way]`` the code (or ``None`` when ``way`` is the line's
    excluded way).  Precomputing them once per geometry removes the
    list-building ``representable.index(...)`` work from every way-table
    lookup and update (both sit on the per-fill/per-access hot path).
    """
    key = (layout.l1_banks, layout.l1_associativity, layout.lines_per_page)
    tables = _CODEC_CACHE.get(key)
    if tables is None:
        assoc = layout.l1_associativity
        decode: List[List[Optional[int]]] = []
        encode: List[List[Optional[int]]] = []
        for line in range(layout.lines_per_page):
            excluded = (line // layout.l1_banks) % assoc
            representable = [w for w in range(assoc) if w != excluded]
            decode.append([None] + representable)
            encode.append(
                [None if w == excluded else representable.index(w) + 1 for w in range(assoc)]
            )
        tables = _CODEC_CACHE[key] = (decode, encode)
    return tables


class WayTableEntry:
    """Way codes for the 64 lines of one page, packed 2 bits per line.

    The code of line ``i`` is interpreted relative to that line's *excluded*
    way (Sec. V: lines 0..3 exclude way 0, lines 4..7 exclude way 1, ...):

    ========  =============================================
    code      meaning
    ========  =============================================
    0         way unknown / line not present
    1..3      the line resides in the c-th remaining way
    ========  =============================================
    """

    def __init__(self, layout: AddressLayout = DEFAULT_LAYOUT) -> None:
        self.layout = layout
        self._codes: List[int] = [0] * layout.lines_per_page
        self._decode_tbl, self._encode_tbl = _codec_tables(layout)

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------
    def excluded_way(self, line_in_page: int) -> int:
        """Way that cannot be represented for ``line_in_page``."""
        self._check_line(line_in_page)
        return (line_in_page // self.layout.l1_banks) % self.layout.l1_associativity

    def _check_line(self, line_in_page: int) -> None:
        if line_in_page < 0 or line_in_page >= self.layout.lines_per_page:
            raise ValueError(
                f"line {line_in_page} outside 0..{self.layout.lines_per_page - 1}"
            )

    def _encode(self, line_in_page: int, way: int) -> Optional[int]:
        """Map a physical way to its 2-bit code (``None`` if not encodable)."""
        if way < 0 or way >= self.layout.l1_associativity:
            raise ValueError(f"way {way} outside the cache associativity")
        self._check_line(line_in_page)
        return self._encode_tbl[line_in_page][way]

    def _decode(self, line_in_page: int, code: int) -> Optional[int]:
        """Map a 2-bit code back to a physical way (``None`` for unknown)."""
        self._check_line(line_in_page)
        return self._decode_tbl[line_in_page][code]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def way_of(self, line_in_page: int) -> Optional[int]:
        """Determined way of ``line_in_page`` or ``None`` — the hot-path
        :meth:`lookup` without the :class:`WayPrediction` allocation."""
        return self._decode_tbl[line_in_page][self._codes[line_in_page]]

    def lookup(self, line_in_page: int) -> WayPrediction:
        """Way prediction for one line of the page."""
        self._check_line(line_in_page)
        way = self._decode_tbl[line_in_page][self._codes[line_in_page]]
        if way is None:
            return WayPrediction(known=False)
        return WayPrediction(known=True, way=way)

    def update(self, line_in_page: int, way: int) -> bool:
        """Record that ``line_in_page`` now resides in ``way``.

        Returns ``False`` when the way equals the line's excluded way and the
        entry therefore has to record "unknown" instead.
        """
        code = self._encode(line_in_page, way)
        if code is None:
            self._codes[line_in_page] = 0
            return False
        self._codes[line_in_page] = code
        return True

    def invalidate_line(self, line_in_page: int) -> None:
        """Clear the code of one line (cache eviction)."""
        self._check_line(line_in_page)
        self._codes[line_in_page] = 0

    def clear(self) -> None:
        """Invalidate the whole entry (page replaced in the TLB)."""
        self._codes = [0] * self.layout.lines_per_page

    def copy_from(self, other: "WayTableEntry") -> None:
        """Overwrite this entry with the codes of ``other`` (entry transfer)."""
        if other.layout.lines_per_page != self.layout.lines_per_page:
            raise ValueError("way table entries have incompatible geometries")
        self._codes = list(other._codes)

    def known_lines(self) -> int:
        """Number of lines with a valid way determination."""
        return sum(1 for code in self._codes if code != 0)

    # ------------------------------------------------------------------
    # Storage accounting (Fig. 3 discussion)
    # ------------------------------------------------------------------
    @property
    def storage_bits(self) -> int:
        """Bits of storage used by the packed format (128 for 64 lines)."""
        return 2 * self.layout.lines_per_page

    @property
    def naive_storage_bits(self) -> int:
        """Bits a separate valid + way-id encoding would need (192)."""
        way_bits = max(1, (self.layout.l1_associativity - 1).bit_length())
        return (1 + way_bits) * self.layout.lines_per_page


class WayTable:
    """A way table whose entries parallel the slots of one TLB level."""

    def __init__(
        self,
        tlb: TLB,
        name: str = "wt",
        layout: AddressLayout = DEFAULT_LAYOUT,
        stats: Optional[StatCounters] = None,
    ) -> None:
        self.name = name
        self.layout = layout
        self.tlb = tlb
        self.stats = stats if stats is not None else StatCounters()
        self._entries: List[WayTableEntry] = [
            WayTableEntry(layout) for _ in range(tlb.entries)
        ]
        # Per-access counters resolved to integer slots once (hot path).
        self._h_read = self.stats.handle(f"{name}.read")
        self._h_update = self.stats.handle(f"{name}.update")
        self._h_clear = self.stats.handle(f"{name}.clear")
        self._h_entry_transfer = self.stats.handle(f"{name}.entry_transfer")

    # ------------------------------------------------------------------
    def entry(self, slot: int) -> WayTableEntry:
        """Entry paired with TLB slot ``slot``."""
        return self._entries[slot]

    def read(self, slot: int) -> WayTableEntry:
        """Read the entry of ``slot`` (counted as one array read)."""
        self.stats.bump(self._h_read)
        return self._entries[slot]

    def lookup_line(self, slot: int, line_in_page: int) -> WayPrediction:
        """Prediction for one line of the page held in ``slot``.

        The energy cost of serving any number of same-page accesses is a
        single entry read; per-line decoding is free, so this helper does not
        count additional events.
        """
        prediction = self._entries[slot].lookup(line_in_page)
        prediction.source = self.name
        return prediction

    def update_line(self, slot: int, line_in_page: int, way: int) -> bool:
        """Record a fill / feedback update for one line (one array write)."""
        self.stats.bump(self._h_update)
        return self._entries[slot].update(line_in_page, way)

    def invalidate_line(self, slot: int, line_in_page: int) -> None:
        """Clear validity of one line (cache eviction); one array write."""
        self.stats.bump(self._h_update)
        self._entries[slot].invalidate_line(line_in_page)

    def clear_entry(self, slot: int) -> None:
        """Invalidate the whole entry (page replaced)."""
        self.stats.bump(self._h_clear)
        self._entries[slot].clear()

    def write_entry(self, slot: int, entry: WayTableEntry) -> None:
        """Overwrite the entry of ``slot`` with ``entry`` (entry transfer)."""
        self.stats.bump(self._h_entry_transfer)
        self._entries[slot].copy_from(entry)

    @property
    def total_storage_bits(self) -> int:
        """Total data-array storage of this way table."""
        return sum(entry.storage_bits for entry in self._entries)


class WayTableHierarchy:
    """uWT + WT coupled to a :class:`~repro.tlb.tlb.TLBHierarchy`.

    The class wires together every synchronisation rule of Sec. V:

    * uTLB miss (TLB hit) → the WT entry is copied into the uWT slot taken by
      the refilled translation;
    * uTLB eviction → the uWT entry is written back to the WT (if the page is
      still TLB resident);
    * TLB eviction → the WT entry is cleared; if the page is later re-fetched
      a fresh, all-invalid entry is allocated;
    * L1 line fill/eviction → the entry of the owning page is updated through
      a reverse (physical) lookup, preferring the uWT and falling back to the
      WT ("the WT is only updated if no corresponding uWT entry was found");
    * unknown prediction followed by a conventional hit → feedback through
      the last-entry register (``enable_feedback_update``).
    """

    def __init__(
        self,
        translation: TLBHierarchy,
        layout: AddressLayout = DEFAULT_LAYOUT,
        stats: Optional[StatCounters] = None,
        enable_feedback_update: bool = True,
    ) -> None:
        self.layout = layout
        self.translation = translation
        self.stats = stats if stats is not None else StatCounters()
        self.enable_feedback_update = enable_feedback_update
        self.uwt = WayTable(translation.utlb, name="uwt", layout=layout, stats=self.stats)
        self.wt = WayTable(translation.tlb, name="wt", layout=layout, stats=self.stats)
        #: Last-entry register: uWT slot of the most recent prediction, used
        #: to feed conventional-hit ways back without a second uTLB lookup.
        self._last_uwt_slot: Optional[int] = None
        translation.utlb.add_eviction_callback(self._on_utlb_replacement)
        translation.tlb.add_eviction_callback(self._on_tlb_replacement)
        self._h_feedback_update = self.stats.handle("way_pred.feedback_update")
        # Remaining per-event counters resolved to integer slots (hot path).
        self._h_uwt_writeback = self.stats.handle("uwt.writeback")
        self._h_wt_page_invalidated = self.stats.handle("wt.page_invalidated")
        self._h_fill_unmapped = self.stats.handle("way_pred.fill_unmapped")
        self._h_evict_unmapped = self.stats.handle("way_pred.evict_unmapped")
        self._h_unencodable = self.stats.handle("way_pred.unencodable_way")

    # ------------------------------------------------------------------
    # TLB synchronisation
    # ------------------------------------------------------------------
    def _on_utlb_replacement(self, slot: int, old: TLBEntry, new: TLBEntry) -> None:
        """uTLB slot recycled: write the old uWT entry back, load the new one."""
        if old.valid:
            tlb_slot = self.translation.tlb.reverse_lookup(
                old.physical_page, count_event=False
            )
            if tlb_slot is not None:
                self.wt.write_entry(tlb_slot, self.uwt.entry(slot))
                self.stats.bump(self._h_uwt_writeback)
        # Load the WT entry of the incoming page (if TLB resident) so the uWT
        # immediately covers it; otherwise start from an empty entry.
        new_tlb_slot = self.translation.tlb.lookup(new.virtual_page, count_event=False)
        if new_tlb_slot is not None:
            self.uwt.write_entry(slot, self.wt.entry(new_tlb_slot))
        else:
            self.uwt.clear_entry(slot)
        if self._last_uwt_slot == slot:
            self._last_uwt_slot = None

    def _on_tlb_replacement(self, slot: int, old: TLBEntry, new: TLBEntry) -> None:
        """TLB slot recycled: all way information of the old page is lost."""
        self.wt.clear_entry(slot)
        if old.valid:
            self.stats.bump(self._h_wt_page_invalidated)

    # ------------------------------------------------------------------
    # Prediction path
    # ------------------------------------------------------------------
    def predict_page(self, virtual_page: int) -> Optional[WayTableEntry]:
        """Return the way-table entry covering ``virtual_page`` after translation.

        The caller must have already performed the translation for this page
        this cycle (the entry read shares the TLB access).  Returns ``None``
        when no entry is available (should not happen after a translation,
        but kept defensive for uninitialised pages).
        """
        slot = self.translation.utlb.lookup(virtual_page, count_event=False)
        if slot is not None:
            self._last_uwt_slot = slot
            self.uwt.stats.bump(self.uwt._h_read)
            return self.uwt.entry(slot)
        tlb_slot = self.translation.tlb.lookup(virtual_page, count_event=False)
        if tlb_slot is not None:
            self._last_uwt_slot = None
            self.wt.stats.bump(self.wt._h_read)
            return self.wt.entry(tlb_slot)
        return None

    def predict_line(self, virtual_page: int, line_in_page: int) -> WayPrediction:
        """Prediction for a single line (convenience wrapper)."""
        entry = self.predict_page(virtual_page)
        if entry is None:
            self.stats.add("way_pred.no_entry")
            return WayPrediction(known=False, source="none")
        prediction = entry.lookup(line_in_page)
        prediction.source = "uwt" if self._last_uwt_slot is not None else "wt"
        self.stats.add("way_pred.lookup")
        if prediction.known:
            self.stats.add("way_pred.known")
        return prediction

    # ------------------------------------------------------------------
    # Feedback and cache-coherence updates
    # ------------------------------------------------------------------
    def feedback_conventional_hit(self, physical_address: int, way: int) -> None:
        """Unknown prediction but the conventional access hit: update the uWT.

        Uses the last-entry register, i.e. no additional uTLB lookup is
        charged (Sec. V).  Disabled when ``enable_feedback_update`` is False —
        the ablation that reproduces the 75 % vs 94 % coverage comparison.
        """
        if not self.enable_feedback_update:
            return
        if self._last_uwt_slot is None:
            return
        line_in_page = self.layout.decompose(physical_address).line_in_page
        self.uwt.update_line(self._last_uwt_slot, line_in_page, way)
        self.stats.bump(self._h_feedback_update)

    def _locate_slot_for_physical(self, physical_address: int):
        """Find (table, slot) owning the page of ``physical_address``."""
        ppage = self.layout.decompose(physical_address).page_id
        slot = self.translation.utlb.reverse_lookup(ppage)
        if slot is not None:
            return self.uwt, slot
        slot = self.translation.tlb.reverse_lookup(ppage)
        if slot is not None:
            return self.wt, slot
        return None, None

    def on_line_fill(self, line_address: int, way: int) -> None:
        """L1 installed a line: set its validity/way in the owning entry."""
        table, slot = self._locate_slot_for_physical(line_address)
        if table is None:
            self.stats.bump(self._h_fill_unmapped)
            return
        line_in_page = self.layout.line_in_page(line_address)
        if not table.update_line(slot, line_in_page, way):
            self.stats.bump(self._h_unencodable)

    def on_line_evict(self, line_address: int, way: int) -> None:
        """L1 evicted a line: clear its validity in the owning entry."""
        table, slot = self._locate_slot_for_physical(line_address)
        if table is None:
            self.stats.bump(self._h_evict_unmapped)
            return
        table.invalidate_line(slot, self.layout.line_in_page(line_address))

    def attach_to_cache(self, l1_cache) -> None:
        """Register fill/evict listeners on an :class:`L1DataCache`."""
        l1_cache.add_fill_listener(self.on_line_fill)
        l1_cache.add_evict_listener(self.on_line_evict)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def coverage(self) -> float:
        """Fraction of predictions that returned a known, valid way."""
        return self.stats.ratio("way_pred.known", "way_pred.lookup")

    @property
    def total_storage_bits(self) -> int:
        """Combined uWT + WT data-array storage."""
        return self.uwt.total_storage_bits + self.wt.total_storage_bits
