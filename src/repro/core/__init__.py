"""MALEC core: the paper's primary contribution.

This package implements the two mechanisms the paper proposes:

* **Page-Based Memory Access Grouping** (Sec. IV) — the
  :class:`~repro.core.input_buffer.InputBuffer` groups pending loads and
  evicted merge-buffer entries by virtual page so that a single address
  translation per cycle can be shared by the whole group, and the
  :class:`~repro.core.arbitration.ArbitrationUnit` distributes the group over
  the four single-ported cache banks, merging loads that fall into the same
  cache line (or aligned sub-block pair).
* **Page-Based Way Determination** (Sec. V) — the
  :class:`~repro.core.way_table.WayTableHierarchy` attaches a way table to
  each TLB level (uWT next to the uTLB, WT next to the TLB) holding 2-bit
  validity + way codes for all 64 lines of a translated page, letting most
  accesses bypass the L1 tag arrays entirely.

The :class:`~repro.core.wdu.WayDeterminationUnit` re-implements Nicolaescu et
al.'s line-based WDU (extended with validity bits, as the paper does for its
comparison in Sec. VI-C).
"""

from repro.core.request import AccessKind, MemoryAccessRequest
from repro.core.way_table import (
    WayPrediction,
    WayTable,
    WayTableEntry,
    WayTableHierarchy,
)
from repro.core.wdu import WayDeterminationUnit
from repro.core.input_buffer import InputBuffer, PageGroup
from repro.core.arbitration import ArbitrationUnit, BankRequest, ArbitrationResult

__all__ = [
    "AccessKind",
    "MemoryAccessRequest",
    "WayPrediction",
    "WayTable",
    "WayTableEntry",
    "WayTableHierarchy",
    "WayDeterminationUnit",
    "InputBuffer",
    "PageGroup",
    "ArbitrationUnit",
    "BankRequest",
    "ArbitrationResult",
]
