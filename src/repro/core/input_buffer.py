"""Input Buffer: Page-Based Memory Access Grouping (Sec. IV).

The Input Buffer receives loads that finished address computation and merge
buffer entries (MBEs) evicted towards the cache, prioritizes them and
identifies, each cycle, the group of entries that access the same virtual
page.  Only that group proceeds: its page id is translated once (a single
uTLB/TLB access) and the result is shared by every member.

Priorities, from high to low (Sec. IV):

1. loads held from previous cycles (oldest first),
2. loads finishing address computation this cycle (program order),
3. one evicted MBE (not time critical, its stores already committed).

Unmatched loads — and loads rejected by the Arbitration Unit because of bank
conflicts or result-bus limits — are held for the next cycle.  If the held
storage would overflow, address computation stalls (modelled through
:meth:`InputBuffer.can_accept_load`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.core.request import MemoryAccessRequest
from repro.stats import StatCounters


@dataclass
class PageGroup:
    """The set of same-page requests selected for one cycle.

    Attributes
    ----------
    virtual_page:
        Page shared by every member; translated once for the whole group.
    members:
        Requests in priority order.  The first member is the leader whose
        page id was sent to the uTLB.
    mbe:
        The merge-buffer entry included in the group, if any (also present in
        ``members``).
    """

    virtual_page: int
    members: List[MemoryAccessRequest] = field(default_factory=list)
    mbe: Optional[MemoryAccessRequest] = None

    @property
    def loads(self) -> List[MemoryAccessRequest]:
        """Members that are loads (excludes the MBE)."""
        return [request for request in self.members if request.is_load]

    def __len__(self) -> int:
        return len(self.members)


class InputBuffer:
    """Priority buffer grouping pending accesses by virtual page.

    Parameters
    ----------
    held_capacity:
        Storage for loads left over from previous cycles.  The evaluated
        MALEC configuration uses storage for two loads (Sec. VI-A); the
        scalable design of Fig. 2a allows three.
    new_loads_per_cycle:
        Maximum number of loads arriving from address computation per cycle.
    """

    def __init__(
        self,
        held_capacity: int = 2,
        new_loads_per_cycle: int = 4,
        stats: Optional[StatCounters] = None,
    ) -> None:
        if held_capacity < 0:
            raise ValueError("held capacity cannot be negative")
        if new_loads_per_cycle <= 0:
            raise ValueError("at least one new load per cycle must be possible")
        self.held_capacity = held_capacity
        self.new_loads_per_cycle = new_loads_per_cycle
        self.stats = stats if stats is not None else StatCounters()
        self._held: Deque[MemoryAccessRequest] = deque()
        self._new: List[MemoryAccessRequest] = []
        self._mbe: Optional[MemoryAccessRequest] = None
        # Per-cycle counters resolved to integer slots once (hot path).
        self._h_load_in = self.stats.handle("input_buffer.load_in")
        self._h_mbe_in = self.stats.handle("input_buffer.mbe_in")
        self._h_page_compare = self.stats.handle("input_buffer.page_compare")
        self._h_group_selected = self.stats.handle("input_buffer.group_selected")
        self._h_group_size = self.stats.handle("input_buffer.group_size")
        self._h_overflow_cycle = self.stats.handle("input_buffer.overflow_cycle")
        self._h_held_loads = self.stats.handle("input_buffer.held_loads")
        self._h_mbe_out = self.stats.handle("input_buffer.mbe_out")

    # ------------------------------------------------------------------
    # Occupancy and back-pressure
    # ------------------------------------------------------------------
    @property
    def held_loads(self) -> List[MemoryAccessRequest]:
        """Loads carried over from previous cycles (highest priority)."""
        return list(self._held)

    @property
    def pending_loads(self) -> int:
        """All loads currently waiting (held + arrived this cycle)."""
        return len(self._held) + len(self._new)

    @property
    def has_mbe(self) -> bool:
        """True when a merge-buffer entry is waiting to be written back."""
        return self._mbe is not None

    def can_accept_load(self) -> bool:
        """True when another load may be submitted this cycle.

        Address computation must stall when the buffer's storage would be
        insufficient to hold unserviced loads (Sec. IV), which is the case
        when the held storage is already full or this cycle's arrival slots
        are exhausted.
        """
        if len(self._new) >= self.new_loads_per_cycle:
            return False
        return len(self._held) < self.held_capacity + 1

    def can_accept_mbe(self) -> bool:
        """True when the single MBE slot is free."""
        return self._mbe is None

    # ------------------------------------------------------------------
    # Submissions
    # ------------------------------------------------------------------
    def add_load(self, request: MemoryAccessRequest) -> None:
        """Submit a load that finished address computation this cycle."""
        if not request.is_load:
            raise ValueError("add_load expects a load request")
        if len(self._new) >= self.new_loads_per_cycle:
            raise RuntimeError("too many loads submitted this cycle")
        self._new.append(request)
        self.stats.bump(self._h_load_in)

    def add_mbe(self, request: MemoryAccessRequest) -> None:
        """Submit an evicted merge-buffer entry."""
        if not request.is_mbe:
            raise ValueError("add_mbe expects a merge-buffer entry")
        if self._mbe is not None:
            raise RuntimeError("the MBE slot is already occupied")
        self._mbe = request
        self.stats.bump(self._h_mbe_in)

    # ------------------------------------------------------------------
    # Page-group selection
    # ------------------------------------------------------------------
    def _candidates(self) -> List[MemoryAccessRequest]:
        """All waiting entries in priority order (held, new, MBE)."""
        ordered: List[MemoryAccessRequest] = list(self._held) + list(self._new)
        if self._mbe is not None:
            ordered.append(self._mbe)
        return ordered

    def select_group(self) -> Optional[PageGroup]:
        """Identify this cycle's page group.

        The highest-priority entry becomes the leader; its virtual page id is
        what the interface sends to the uTLB.  Every other currently valid
        entry is compared against that page id (one narrow comparator per
        entry — counted for completeness even though the paper deems the
        energy negligible) and matching entries join the group.

        Returns ``None`` when nothing is waiting.
        """
        held = self._held
        new = self._new
        mbe = self._mbe
        if held:
            leader = held[0]
        elif new:
            leader = new[0]
        elif mbe is not None:
            leader = mbe
        else:
            return None
        page = leader.virtual_page
        group = PageGroup(virtual_page=page)
        members = group.members
        stats = self.stats
        compares = -1  # the leader compares against nobody
        for source in (held, new, (mbe,) if mbe is not None else ()):
            for request in source:
                compares += 1
                if request.virtual_page != page:
                    continue
                members.append(request)
                if request.is_mbe:
                    group.mbe = request
        if compares:  # integer sum: one bump of n is bit-identical to n bumps
            stats.bump(self._h_page_compare, compares)
        stats.bump(self._h_group_selected)
        stats.bump(self._h_group_size, len(members))
        return group

    # ------------------------------------------------------------------
    # End-of-cycle bookkeeping
    # ------------------------------------------------------------------
    def retire(self, serviced: List[MemoryAccessRequest]) -> None:
        """Remove requests that were serviced (sent to the cache) this cycle."""
        serviced_ids = {request.request_id for request in serviced}
        self._held = deque(
            request for request in self._held if request.request_id not in serviced_ids
        )
        self._new = [
            request for request in self._new if request.request_id not in serviced_ids
        ]
        if self._mbe is not None and self._mbe.request_id in serviced_ids:
            self._mbe = None
            self.stats.bump(self._h_mbe_out)

    def end_cycle(self) -> int:
        """Carry unserviced loads over to the next cycle.

        Returns the number of loads now held; the caller may use it to model
        address-computation stalls (via :meth:`can_accept_load`).
        """
        if self._new:
            self._held.extend(self._new)
            self._new = []
        held = len(self._held)
        if held > self.held_capacity:
            self.stats.bump(self._h_overflow_cycle)
        self.stats.bump(self._h_held_loads, held)
        return held

    def take_mbe(self) -> Optional[MemoryAccessRequest]:
        """Remove and return the waiting MBE, if any (end-of-run drain)."""
        mbe = self._mbe
        self._mbe = None
        return mbe

    @property
    def empty(self) -> bool:
        """True when no loads and no MBE are waiting."""
        return not self._held and not self._new and self._mbe is None
