"""Memory access requests flowing through the L1 interface models.

A :class:`MemoryAccessRequest` wraps one dynamic memory operation (a load, a
store, or a merge-buffer entry being written back) on its way from address
computation to the cache.  It carries the virtual address produced by the
address-computation units, the physical address once translation has
happened, and bookkeeping used by the Input Buffer and Arbitration Unit
(priority, arrival cycle, merge parent).

Interface models create requests from pipeline instructions; the ``tag``
field carries an opaque reference back to whatever issued the request (a
:class:`repro.cpu.instruction.MemoryInstruction` in full simulations, a bare
integer in unit tests).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT

_request_ids = itertools.count()


class AccessKind(enum.Enum):
    """Type of memory access serviced by the L1 interface."""

    LOAD = "load"
    STORE = "store"
    #: A merge-buffer entry evicted towards the cache (a committed store
    #: group); never time critical (Sec. IV).
    MBE = "mbe"


@dataclass
class MemoryAccessRequest:
    """One in-flight memory access.

    Attributes
    ----------
    kind:
        Load, store or merge-buffer eviction.
    virtual_address:
        Address produced by address computation.
    size:
        Access width in bytes (informational).
    arrival_cycle:
        Cycle in which address computation finished.
    tag:
        Opaque reference back to the issuing instruction.
    physical_address:
        Filled in once the translation for the request's page is available.
    way_hint:
        Way supplied by the way tables / WDU (``None`` = unknown).
    merged_into:
        When this load was merged with an earlier load to the same line, the
        request that actually accessed the cache.
    """

    kind: AccessKind
    virtual_address: int
    size: int = 4
    arrival_cycle: int = 0
    tag: Any = None
    layout: AddressLayout = DEFAULT_LAYOUT
    physical_address: Optional[int] = None
    way_hint: Optional[int] = None
    merged_into: Optional["MemoryAccessRequest"] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # ------------------------------------------------------------------
    # Convenience accessors used by the grouping / arbitration logic
    # ------------------------------------------------------------------
    @property
    def is_load(self) -> bool:
        """True for demand loads (merge-buffer evictions are writes)."""
        return self.kind is AccessKind.LOAD

    @property
    def is_store(self) -> bool:
        """True for stores still travelling towards the store buffer."""
        return self.kind is AccessKind.STORE

    @property
    def is_mbe(self) -> bool:
        """True for merge-buffer entries being written back to the cache."""
        return self.kind is AccessKind.MBE

    @property
    def virtual_page(self) -> int:
        """Virtual page id of the access."""
        return self.layout.page_id(self.virtual_address)

    @property
    def line_in_page(self) -> int:
        """Line index within the page (the field the narrow comparators use)."""
        return self.layout.line_in_page(self.virtual_address)

    @property
    def bank_index(self) -> int:
        """L1 bank the access maps to (valid for both VA and PA since the
        bank is selected from page-offset bits)."""
        return self.layout.bank_index(self.virtual_address)

    @property
    def translated(self) -> bool:
        """True once a physical address has been attached."""
        return self.physical_address is not None

    def attach_translation(self, physical_page: int) -> None:
        """Fill in the physical address from a translated page id."""
        offset = self.layout.page_offset(self.virtual_address)
        self.physical_address = self.layout.compose(physical_page, offset)

    def same_page_as(self, other: "MemoryAccessRequest") -> bool:
        """True when both requests touch the same virtual page."""
        return self.virtual_page == other.virtual_page

    def same_line_as(self, other: "MemoryAccessRequest") -> bool:
        """True when both requests touch the same cache line."""
        return self.layout.same_line(self.virtual_address, other.virtual_address)

    def same_subblock_pair_as(self, other: "MemoryAccessRequest") -> bool:
        """True when both requests fall in the same aligned sub-block pair."""
        return self.layout.same_page(self.virtual_address, other.virtual_address) and (
            self.layout.same_subblock_pair(self.virtual_address, other.virtual_address)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MemoryAccessRequest({self.kind.value}, va={self.virtual_address:#x}, "
            f"id={self.request_id})"
        )
