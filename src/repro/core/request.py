"""Memory access requests flowing through the L1 interface models.

A :class:`MemoryAccessRequest` wraps one dynamic memory operation (a load, a
store, or a merge-buffer entry being written back) on its way from address
computation to the cache.  It carries the virtual address produced by the
address-computation units, the physical address once translation has
happened, and bookkeeping used by the Input Buffer and Arbitration Unit
(priority, arrival cycle, merge parent).

Interface models create requests from pipeline instructions; the ``tag``
field carries an opaque reference back to whatever issued the request (a
:class:`repro.cpu.instruction.MemoryInstruction` in full simulations, a bare
integer in unit tests).

One request is allocated per in-flight memory operation, so the class uses
``__slots__`` and resolves its address decomposition exactly once at
construction through the layout's memoised :meth:`~repro.memory.address.AddressLayout.decompose`
— the grouping and arbitration logic then reads plain attributes instead of
re-slicing the address per comparison.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT

_request_ids = itertools.count()


class AccessKind(enum.Enum):
    """Type of memory access serviced by the L1 interface."""

    LOAD = "load"
    STORE = "store"
    #: A merge-buffer entry evicted towards the cache (a committed store
    #: group); never time critical (Sec. IV).
    MBE = "mbe"


class MemoryAccessRequest:
    """One in-flight memory access.

    Attributes
    ----------
    kind:
        Load, store or merge-buffer eviction.
    virtual_address:
        Address produced by address computation.
    size:
        Access width in bytes (informational).
    arrival_cycle:
        Cycle in which address computation finished.
    tag:
        Opaque reference back to the issuing instruction.
    physical_address:
        Filled in once the translation for the request's page is available.
    way_hint:
        Way supplied by the way tables / WDU (``None`` = unknown).
    merged_into:
        When this load was merged with an earlier load to the same line, the
        request that actually accessed the cache.
    virtual_page / line_in_page / bank_index:
        Cached fields of the virtual address, decomposed once at construction.
    """

    __slots__ = (
        "kind",
        "virtual_address",
        "size",
        "arrival_cycle",
        "tag",
        "layout",
        "physical_address",
        "way_hint",
        "merged_into",
        "request_id",
        "is_load",
        "is_store",
        "is_mbe",
        "virtual_page",
        "line_in_page",
        "bank_index",
        "_line_number",
        "_subblock_pair",
    )

    def __init__(
        self,
        kind: AccessKind,
        virtual_address: int,
        size: int = 4,
        arrival_cycle: int = 0,
        tag: Any = None,
        layout: AddressLayout = DEFAULT_LAYOUT,
        physical_address: Optional[int] = None,
        way_hint: Optional[int] = None,
        merged_into: Optional["MemoryAccessRequest"] = None,
        request_id: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.virtual_address = virtual_address
        self.size = size
        self.arrival_cycle = arrival_cycle
        self.tag = tag
        self.layout = layout
        self.physical_address = physical_address
        self.way_hint = way_hint
        self.merged_into = merged_into
        self.request_id = next(_request_ids) if request_id is None else request_id
        self.is_load = kind is AccessKind.LOAD
        self.is_store = kind is AccessKind.STORE
        self.is_mbe = kind is AccessKind.MBE
        # Decompose the virtual address exactly once (memoised per layout);
        # the Input Buffer and Arbitration Unit compare these plain fields.
        parts = layout.decompose(virtual_address)
        self.virtual_page = parts.page_id
        self.line_in_page = parts.line_in_page
        self.bank_index = parts.bank_index
        self._line_number = parts.line_number
        self._subblock_pair = parts.subblock_in_line >> 1

    # ------------------------------------------------------------------
    # Convenience accessors used by the grouping / arbitration logic
    # ------------------------------------------------------------------
    @property
    def translated(self) -> bool:
        """True once a physical address has been attached."""
        return self.physical_address is not None

    def attach_translation(self, physical_page: int) -> None:
        """Fill in the physical address from a translated page id.

        Inline of :meth:`AddressLayout.compose` without the range checks —
        the page id comes from the TLB/page table and the offset from an
        already-validated virtual address, so both are in range.
        """
        layout = self.layout
        self.physical_address = (physical_page << layout.page_offset_bits) | (
            self.virtual_address & layout._page_offset_mask
        )

    def same_page_as(self, other: "MemoryAccessRequest") -> bool:
        """True when both requests touch the same virtual page."""
        return self.virtual_page == other.virtual_page

    def same_line_as(self, other: "MemoryAccessRequest") -> bool:
        """True when both requests touch the same cache line."""
        return self._line_number == other._line_number

    def same_subblock_pair_as(self, other: "MemoryAccessRequest") -> bool:
        """True when both requests fall in the same aligned sub-block pair."""
        return (
            self._line_number == other._line_number
            and self._subblock_pair == other._subblock_pair
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MemoryAccessRequest({self.kind.value}, va={self.virtual_address:#x}, "
            f"id={self.request_id})"
        )
