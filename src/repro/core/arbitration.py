"""Arbitration Unit: bank selection, load merging and way assignment (Sec. IV).

Given the page group selected by the Input Buffer, the Arbitration Unit
decides which accesses actually reach the L1 this cycle:

* for every cache bank it picks the highest-priority access mapping to it
  (the banks are single-ported, so one access per bank per cycle);
* loads to the *same cache line* as an already selected load are merged with
  it — they share the data returned by one bank access.  Only the loads
  consecutive to the initial Input Buffer entry take part in these
  comparisons (a window of three in the paper; the resulting performance loss
  is below 0.5 %).  The comparators are narrow because the page id is already
  known to match (``address_bits - page_id_bits - line_offset_bits``);
* at most ``result_buses`` loads can be serviced per cycle (four in the
  evaluated configuration); lower-priority loads are rejected and stay in the
  Input Buffer;
* way information from the page's way-table entry is attached to every
  selected bank access so the banks can perform reduced (tag-bypassed)
  accesses.

With sub-blocked data arrays MALEC expects each read to return two adjacent
sub-blocks, so two loads can share an access when they fall into the same
aligned sub-block pair; merging at full line granularity or single sub-block
granularity is available for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.input_buffer import PageGroup
from repro.core.request import MemoryAccessRequest
from repro.core.way_table import WayTableEntry
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters

#: Merge granularities supported by :class:`ArbitrationUnit`.
MERGE_GRANULARITIES = ("line", "subblock_pair", "subblock", "none")


class BankRequest:
    """One access issued to a cache bank this cycle (slotted: one per access).

    ``primary`` is the request that drives the access; ``merged`` lists loads
    that share its returned data.  ``way_hint`` is the way supplied by the
    page's way-table entry (``None`` = unknown, conventional access).
    """

    __slots__ = ("bank", "primary", "merged", "is_write", "way_hint")

    def __init__(
        self,
        bank: int,
        primary: MemoryAccessRequest,
        merged: Optional[List[MemoryAccessRequest]] = None,
        is_write: bool = False,
        way_hint: Optional[int] = None,
    ) -> None:
        self.bank = bank
        self.primary = primary
        self.merged = [] if merged is None else merged
        self.is_write = is_write
        self.way_hint = way_hint

    @property
    def loads_serviced(self) -> int:
        """Number of loads satisfied by this single bank access."""
        count = 1 if primary_is_load(self.primary) else 0
        return count + len(self.merged)


def primary_is_load(request: MemoryAccessRequest) -> bool:
    """Helper kept module-level so dataclass methods stay trivial."""
    return request.is_load


@dataclass
class ArbitrationResult:
    """Outcome of one arbitration cycle."""

    bank_requests: List[BankRequest] = field(default_factory=list)
    serviced: List[MemoryAccessRequest] = field(default_factory=list)
    rejected: List[MemoryAccessRequest] = field(default_factory=list)
    merged_pairs: int = 0

    @property
    def serviced_loads(self) -> List[MemoryAccessRequest]:
        """All loads serviced this cycle (primaries and merged)."""
        return [request for request in self.serviced if request.is_load]


class ArbitrationUnit:
    """Selects the accesses that reach the cache banks each cycle."""

    def __init__(
        self,
        layout: AddressLayout = DEFAULT_LAYOUT,
        result_buses: int = 4,
        merge_window: int = 3,
        merge_granularity: str = "subblock_pair",
        stats: Optional[StatCounters] = None,
    ) -> None:
        if result_buses <= 0:
            raise ValueError("at least one result bus is required")
        if merge_window < 0:
            raise ValueError("merge window cannot be negative")
        if merge_granularity not in MERGE_GRANULARITIES:
            raise ValueError(
                f"merge granularity {merge_granularity!r} not in {MERGE_GRANULARITIES}"
            )
        self.layout = layout
        self.result_buses = result_buses
        self.merge_window = merge_window
        self.merge_granularity = merge_granularity
        self.stats = stats if stats is not None else StatCounters()
        # Per-cycle counters resolved to integer slots once (hot path).
        self._h_mbe_bank_conflict = self.stats.handle("arb.mbe_bank_conflict")
        self._h_line_compare = self.stats.handle("arb.line_compare")
        self._h_merged_load = self.stats.handle("arb.merged_load")
        self._h_rejected_result_bus = self.stats.handle("arb.rejected_result_bus")
        self._h_rejected_bank_conflict = self.stats.handle("arb.rejected_bank_conflict")
        self._h_granted_load = self.stats.handle("arb.granted_load")
        self._h_way_hint_assigned = self.stats.handle("arb.way_hint_assigned")
        self._h_cycles = self.stats.handle("arb.cycles")
        self._h_bank_accesses = self.stats.handle("arb.bank_accesses")

    # ------------------------------------------------------------------
    def _can_merge(self, a: MemoryAccessRequest, b: MemoryAccessRequest) -> bool:
        """True when two loads can share one bank access."""
        if self.merge_granularity == "none":
            return False
        if self.merge_granularity == "line":
            return a.same_line_as(b)
        if self.merge_granularity == "subblock_pair":
            return a.same_subblock_pair_as(b)
        # Single sub-block granularity.
        return a.same_line_as(b) and (
            self.layout.subblock_in_line(a.virtual_address)
            == self.layout.subblock_in_line(b.virtual_address)
        )

    def arbitrate(
        self,
        group: PageGroup,
        way_entry: Optional[WayTableEntry] = None,
    ) -> ArbitrationResult:
        """Distribute the page group over the banks.

        Parameters
        ----------
        group:
            Output of :meth:`repro.core.input_buffer.InputBuffer.select_group`.
        way_entry:
            Way-table entry covering the group's page (``None`` when way
            determination is disabled); used to attach way hints.
        """
        result = ArbitrationResult()
        bank_owner: Dict[int, BankRequest] = {}
        loads_granted = 0

        for position, request in enumerate(group.members):
            bank = request.bank_index

            if request.is_mbe:
                # The MBE writes the cache; it needs its bank but no result bus.
                if bank in bank_owner:
                    self.stats.bump(self._h_mbe_bank_conflict)
                    result.rejected.append(request)
                    continue
                bank_request = BankRequest(bank=bank, primary=request, is_write=True)
                bank_owner[bank] = bank_request
                result.bank_requests.append(bank_request)
                result.serviced.append(request)
                continue

            # ----------------------------------------------------------
            # Loads: try merging with an already granted access first.
            # ----------------------------------------------------------
            merged = False
            if position <= self.merge_window and self.merge_granularity != "none":
                for bank_request in bank_owner.values():
                    if bank_request.is_write:
                        continue
                    self.stats.bump(self._h_line_compare)
                    if self._can_merge(bank_request.primary, request):
                        if loads_granted >= self.result_buses:
                            break
                        bank_request.merged.append(request)
                        result.serviced.append(request)
                        result.merged_pairs += 1
                        loads_granted += 1
                        merged = True
                        self.stats.bump(self._h_merged_load)
                        break
            if merged:
                continue

            if loads_granted >= self.result_buses:
                self.stats.bump(self._h_rejected_result_bus)
                result.rejected.append(request)
                continue

            if bank in bank_owner:
                self.stats.bump(self._h_rejected_bank_conflict)
                result.rejected.append(request)
                continue

            bank_request = BankRequest(bank=bank, primary=request, is_write=False)
            bank_owner[bank] = bank_request
            result.bank_requests.append(bank_request)
            result.serviced.append(request)
            loads_granted += 1
            self.stats.bump(self._h_granted_load)

        self._assign_way_hints(result, way_entry)
        self.stats.bump(self._h_cycles)
        self.stats.bump(self._h_bank_accesses, len(result.bank_requests))
        return result

    # ------------------------------------------------------------------
    def _assign_way_hints(
        self, result: ArbitrationResult, way_entry: Optional[WayTableEntry]
    ) -> None:
        """Attach way-table information to every selected bank access.

        The energy to evaluate the WT entry is independent of the number of
        accesses serviced (at most one way per bank is needed), which is what
        makes the scheme scalable (Sec. V); the entry read itself was already
        accounted for when the page was translated.
        """
        if way_entry is None:
            return
        for bank_request in result.bank_requests:
            way = way_entry.way_of(bank_request.primary.line_in_page)
            if way is not None:
                bank_request.way_hint = way
                bank_request.primary.way_hint = way
                for merged in bank_request.merged:
                    merged.way_hint = way
                self.stats.bump(self._h_way_hint_assigned)
