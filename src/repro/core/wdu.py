"""Line-based Way Determination Unit (Nicolaescu et al., DATE 2003).

The WDU is the prior-art scheme that Page-Based Way Determination is compared
against in Sec. VI-C.  It is a small fully-associative buffer keyed by cache
*line* address; each entry associates one line with exactly one way.  The
paper extends the original WDU with validity bits (kept coherent with cache
fills and evictions) so that — like the way tables — a WDU hit allows a
*reduced* access that bypasses the tag arrays entirely, making the energy
comparison fair.

Two differences to way tables drive the evaluation results:

* a WDU entry covers one line, a WT entry covers a whole page (64 lines), so
  the WT reaches much higher coverage for the same number of entries
  (94 % vs 68/76/78 % for 8/16/32-entry WDUs);
* the WDU needs one fully-associative, tag-sized lookup port per parallel
  memory access (four for the evaluated MALEC configuration), whereas the way
  tables are read once per page group alongside the TLB lookup.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.way_table import WayPrediction
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters


class WayDeterminationUnit:
    """Fully-associative line-address → way buffer with validity bits.

    Parameters
    ----------
    entries:
        Number of line entries (the paper evaluates 8, 16 and 32).
    lookup_ports:
        Number of parallel lookups the structure must support; only affects
        the energy model (port scaling), not functional behaviour.
    """

    def __init__(
        self,
        entries: int = 16,
        lookup_ports: int = 4,
        layout: AddressLayout = DEFAULT_LAYOUT,
        stats: Optional[StatCounters] = None,
        name: str = "wdu",
    ) -> None:
        if entries <= 0:
            raise ValueError("the WDU needs at least one entry")
        self.entries = entries
        self.lookup_ports = lookup_ports
        self.layout = layout
        self.name = name
        self.stats = stats if stats is not None else StatCounters()
        #: line_number -> way, ordered oldest-first for LRU replacement.
        self._table: "OrderedDict[int, int]" = OrderedDict()

    # ------------------------------------------------------------------
    def predict(self, physical_address: int) -> WayPrediction:
        """Way prediction for the line containing ``physical_address``.

        Each call models one fully-associative lookup (one port's worth of
        energy); callers invoke it once per parallel access.
        """
        line = self.layout.line_number(physical_address)
        self.stats.add(f"{self.name}.lookup")
        self.stats.add("way_pred.lookup")
        way = self._table.get(line)
        if way is None:
            return WayPrediction(known=False, source=self.name)
        self._table.move_to_end(line)
        self.stats.add("way_pred.known")
        return WayPrediction(known=True, way=way, source=self.name)

    def record(self, physical_address: int, way: int) -> None:
        """Insert/update the entry for a line after an access resolved its way."""
        if way < 0 or way >= self.layout.l1_associativity:
            raise ValueError(f"way {way} outside the cache associativity")
        line = self.layout.line_number(physical_address)
        self.stats.add(f"{self.name}.update")
        if line in self._table:
            self._table[line] = way
            self._table.move_to_end(line)
            return
        if len(self._table) >= self.entries:
            self._table.popitem(last=False)
            self.stats.add(f"{self.name}.eviction")
        self._table[line] = way

    # ------------------------------------------------------------------
    # Cache coherence (the validity-bit extension)
    # ------------------------------------------------------------------
    def on_line_fill(self, line_address: int, way: int) -> None:
        """Cache line filled: record its way."""
        self.record(line_address, way)

    def on_line_evict(self, line_address: int, way: int) -> None:
        """Cache line evicted: drop the entry so no stale way is returned."""
        line = self.layout.line_number(line_address)
        if line in self._table:
            del self._table[line]
            self.stats.add(f"{self.name}.invalidate")

    def attach_to_cache(self, l1_cache) -> None:
        """Register fill/evict listeners on an :class:`L1DataCache`."""
        l1_cache.add_fill_listener(self.on_line_fill)
        l1_cache.add_evict_listener(self.on_line_evict)

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of lines currently tracked."""
        return len(self._table)

    @property
    def coverage(self) -> float:
        """Fraction of predictions that returned a known way."""
        return self.stats.ratio("way_pred.known", "way_pred.lookup")

    @property
    def storage_bits(self) -> int:
        """Data storage: line tag + way id + valid bit per entry."""
        line_tag_bits = self.layout.address_bits - self.layout.line_offset_bits
        way_bits = max(1, (self.layout.l1_associativity - 1).bit_length())
        return self.entries * (line_tag_bits + way_bits + 1)
