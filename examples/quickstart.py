#!/usr/bin/env python3
"""Quickstart: compare the three L1 interfaces on one synthetic benchmark.

Runs a short ``gzip``-like trace through the energy-oriented baseline
(Base1ldst), the performance-oriented baseline (Base2ld1st) and MALEC, then
prints normalized execution time and energy — the same comparison the paper's
abstract summarises ("~14 % faster than the single-access baseline at ~22 %
less energy; the multi-ported baseline is similarly fast but needs ~48 %
*more* energy").

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_configuration
from repro.analysis.reporting import format_table
from repro.workloads import benchmark_profile, generate_trace


def main() -> None:
    trace = generate_trace(benchmark_profile("gzip"), instructions=6000)
    print(f"workload: {trace.summary()}")

    configurations = [
        SimulationConfig.base_1ldst(),
        SimulationConfig.base_2ld1st(),
        SimulationConfig.malec(),
    ]

    results = {}
    for config in configurations:
        results[config.name] = run_configuration(config, trace, warmup_fraction=0.3)

    baseline = results["Base1ldst"]
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.cycles,
                result.cycles / baseline.cycles,
                result.energy.dynamic_pj / baseline.energy.total_pj,
                result.energy.leakage_pj / baseline.energy.total_pj,
                result.energy.total_pj / baseline.energy.total_pj,
                result.way_coverage,
                result.merged_load_fraction,
            ]
        )

    print()
    print(
        format_table(
            [
                "configuration",
                "cycles",
                "norm. time",
                "norm. dynamic",
                "norm. leakage",
                "norm. total",
                "way coverage",
                "merged loads",
            ],
            rows,
        )
    )
    print()
    malec = results["MALEC"]
    multi = results["Base2ld1st"]
    print(
        f"MALEC runs within {abs(malec.cycles / multi.cycles - 1) * 100:.1f}% of the "
        f"multi-ported baseline while using "
        f"{(1 - malec.energy.total_pj / multi.energy.total_pj) * 100:.0f}% less energy."
    )


if __name__ == "__main__":
    main()
