#!/usr/bin/env python3
"""Media-decode scenario: the workloads MALEC's introduction motivates.

Mobile media kernels (JPEG / H.263 / MPEG decoding) issue dense, highly
structured memory accesses from a fixed energy budget — exactly the situation
the paper targets.  This example runs the MediaBench2-like profiles through
all five Fig. 4 configurations and breaks MALEC's energy down per structure,
showing where the savings come from (tag arrays bypassed, translations
shared, loads merged).

Run with::

    python examples/media_kernel_energy.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_configuration
from repro.analysis.reporting import format_table, geometric_mean
from repro.workloads import benchmark_profile, generate_trace

MEDIA_BENCHMARKS = ["djpeg", "h263dec", "mpeg2dec", "mpeg4dec", "cjpeg"]
INSTRUCTIONS = 5000


def main() -> None:
    configurations = SimulationConfig.figure4_suite()
    normalized_time = {config.name: [] for config in configurations}
    normalized_energy = {config.name: [] for config in configurations}
    malec_results = []

    for name in MEDIA_BENCHMARKS:
        trace = generate_trace(benchmark_profile(name), instructions=INSTRUCTIONS)
        baseline = None
        for config in configurations:
            result = run_configuration(config, trace, warmup_fraction=0.3)
            if baseline is None:
                baseline = result
            normalized_time[config.name].append(result.cycles / baseline.cycles)
            normalized_energy[config.name].append(
                result.energy.total_pj / baseline.energy.total_pj
            )
            if config.name == "MALEC":
                malec_results.append((name, result))

    rows = [
        [
            config.name,
            geometric_mean(normalized_time[config.name]),
            geometric_mean(normalized_energy[config.name]),
        ]
        for config in configurations
    ]
    print("MediaBench2-like kernels — geometric means normalized to Base1ldst")
    print(format_table(["configuration", "norm. time", "norm. energy"], rows))

    print()
    print("MALEC per-benchmark detail")
    detail_rows = [
        [
            name,
            result.way_coverage,
            result.merged_load_fraction,
            result.l1_load_miss_rate,
        ]
        for name, result in malec_results
    ]
    print(
        format_table(
            ["benchmark", "way coverage", "merged loads", "L1 load miss rate"],
            detail_rows,
        )
    )

    print()
    name, sample = malec_results[0]
    print(f"MALEC energy breakdown for {name} (per structure)")
    print(sample.energy.summary())


if __name__ == "__main__":
    main()
