#!/usr/bin/env python3
"""Page-locality study: reproduce the motivation analysis of Sec. III / Fig. 1.

For each benchmark suite the script measures, over the generated load stream:

* the fraction of loads directly followed by another load to the same page,
  and the same fraction when 1, 2, 3, 4 or 8 intermediate accesses to other
  pages are tolerated (the paper reports 70 % / 85 % / 90 % / 92 % for 0-3);
* the distribution of same-page run lengths (the stacked bars of Fig. 1);
* the fraction of loads directly followed by a load to the same cache line
  (the paper reports 46 %), which is what makes load merging worthwhile.

Run with::

    python examples/page_locality_study.py [instructions-per-benchmark]
"""

from __future__ import annotations

import sys

from repro.analysis.locality import PageLocalityAnalyzer, RUN_LENGTH_BUCKETS
from repro.analysis.reporting import format_table
from repro.workloads import SUITES, suite_profiles
from repro.workloads.synthetic import generate_trace

INTERMEDIATES = (0, 1, 2, 3, 4, 8)


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    analyzer = PageLocalityAnalyzer()

    follow_rows = []
    run_rows = []
    line_fractions = []

    for suite in SUITES:
        suite_follow = {n: [] for n in INTERMEDIATES}
        suite_runs = {bucket: [] for bucket in RUN_LENGTH_BUCKETS}
        for profile in suite_profiles(suite):
            trace = generate_trace(profile, instructions=instructions)
            loads = trace.load_addresses()
            for n in INTERMEDIATES:
                suite_follow[n].append(analyzer.same_page_follow_fraction(loads, n))
            distribution = analyzer.run_length_distribution(loads, 0)
            for bucket in RUN_LENGTH_BUCKETS:
                suite_runs[bucket].append(distribution[bucket])
            line_fractions.append(analyzer.same_line_follow_fraction(loads))
        follow_rows.append(
            [suite] + [sum(suite_follow[n]) / len(suite_follow[n]) for n in INTERMEDIATES]
        )
        run_rows.append(
            [suite] + [sum(suite_runs[b]) / len(suite_runs[b]) for b in RUN_LENGTH_BUCKETS]
        )

    print("Same-page follow fraction per tolerated intermediate accesses")
    print("(paper overall: 0.70 / 0.85 / 0.90 / 0.92 for 0/1/2/3)")
    print(format_table(["suite"] + [f"<= {n}" for n in INTERMEDIATES], follow_rows))
    print()
    print("Fig. 1 — run-length distribution (0 intermediates)")
    print(format_table(["suite"] + list(RUN_LENGTH_BUCKETS), run_rows))
    print()
    print(
        f"Same-line follow fraction, overall average "
        f"(paper: ~0.46): {sum(line_fractions) / len(line_fractions):.3f}"
    )


if __name__ == "__main__":
    main()
