#!/usr/bin/env python3
"""Ingesting an externally captured trace and sweeping it through Fig. 4.

This example fabricates a small valgrind-lackey capture (in the real world:
``valgrind --tool=lackey --trace-mem=yes ./app 2> app.lackey``), then walks
the full ingestion pipeline:

1. parse the lackey text into a :class:`~repro.workloads.trace.MemoryTrace`,
2. drop the warm-up prefix and window the region of interest,
3. interleave it with a second trace into one multiprogrammed workload,
4. write the compact binary ``.rtrc`` form and read it back bit-identically,
5. register the trace and run it through the campaign engine next to a
   synthetic benchmark — cells are keyed by the trace's content hash, so a
   store-backed run of this sweep would resume across processes.

Run with::

    python examples/ingest_real_trace.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import CampaignSpec, ParallelExecutor
from repro.sim.config import SimulationConfig
from repro.workloads import (
    dump_rtrc,
    interleave,
    load_rtrc,
    load_trace,
    register_trace,
    skip_warmup,
    window,
)

# A fabricated lackey capture: a tight loop loading two arrays, storing one.
LACKEY_TEXT = "".join(
    f"I  {0x401000 + 4 * i:x},4\n"
    f" L {0x10000 + 8 * i:x},8\n"
    f" L {0x20000 + 8 * i:x},8\n"
    f" S {0x30000 + 8 * i:x},8\n"
    for i in range(400)
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        capture = Path(tmp) / "app.lackey"
        capture.write_text(LACKEY_TEXT)

        # 1-2. Parse, then trim: skip the first 200 instructions (warm-up),
        # keep a 1000-instruction region of interest.
        trace = load_trace(capture)
        trace = window(skip_warmup(trace, 200), 0, 1000)
        print(f"ingested: {trace.summary()}")

        # 3. A second 'program' for the multiprogrammed mix.
        other = load_trace(capture, name="app2")
        mix = interleave([trace, other], granularity=32, name="mix")
        print(f"interleaved: {mix.summary()}")

        # 4. Binary round trip.
        rtrc = Path(tmp) / "mix.rtrc"
        dump_rtrc(mix, rtrc)
        restored = load_rtrc(rtrc)
        assert restored.instructions == mix.instructions
        print(f"round-tripped {rtrc.stat().st_size} bytes, fingerprint "
              f"{restored.fingerprint()[:12]}")

        # 5. Sweep it alongside a synthetic benchmark.
        handle = register_trace(restored)
        spec = CampaignSpec(
            name="ingest-example",
            configurations=(SimulationConfig.base_1ldst(), SimulationConfig.malec()),
            benchmarks=("gzip", handle.name),
            instructions=2_000,
        )
        results = ParallelExecutor(jobs=1).run(spec)
        for run in results.runs:
            normalized = run.normalized_cycles("Base1ldst")
            print(f"  {run.benchmark:<16s} MALEC time x{normalized['MALEC']:.3f}")


if __name__ == "__main__":
    main()
