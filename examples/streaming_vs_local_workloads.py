#!/usr/bin/env python3
"""Streaming vs cache-friendly workloads: where MALEC wins and where it doesn't.

Sec. VI-D of the paper notes that way prediction (and MALEC's benefits in
general) depend strongly on access locality: streaming, high-miss-rate
workloads such as ``mcf`` and ``art`` see little speed-up and can even lose
energy on the way tables, while pointer-dense but line-local workloads profit
from load merging.  This example contrasts three workload classes:

* a streaming pointer-chase workload (``mcf``-like),
* an array-streaming floating-point workload (``swim``-like),
* a cache-friendly integer workload (``gzip``-like),

and reports execution time, energy, way-table coverage and merged loads for
MALEC relative to both baselines.

Run with::

    python examples/streaming_vs_local_workloads.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_configuration
from repro.analysis.reporting import format_table
from repro.workloads import benchmark_profile, generate_trace

WORKLOADS = {
    "pointer streaming (mcf)": "mcf",
    "array streaming (swim)": "swim",
    "strided, low line reuse (mgrid)": "mgrid",
    "cache friendly (gzip)": "gzip",
    "media kernel (h263dec)": "h263dec",
}
INSTRUCTIONS = 5000


def main() -> None:
    configurations = [
        SimulationConfig.base_1ldst(),
        SimulationConfig.base_2ld1st(),
        SimulationConfig.malec(),
    ]
    rows = []
    for label, benchmark in WORKLOADS.items():
        trace = generate_trace(benchmark_profile(benchmark), instructions=INSTRUCTIONS)
        results = {
            config.name: run_configuration(config, trace, warmup_fraction=0.3)
            for config in configurations
        }
        base = results["Base1ldst"]
        malec = results["MALEC"]
        rows.append(
            [
                label,
                base.l1_load_miss_rate,
                results["Base2ld1st"].cycles / base.cycles,
                malec.cycles / base.cycles,
                malec.energy.total_pj / base.energy.total_pj,
                malec.way_coverage,
                malec.merged_load_fraction,
            ]
        )

    print("MALEC behaviour across workload classes (normalized to Base1ldst)")
    print(
        format_table(
            [
                "workload",
                "L1 miss rate",
                "Base2ld1st time",
                "MALEC time",
                "MALEC energy",
                "way coverage",
                "merged loads",
            ],
            rows,
        )
    )
    print()
    print(
        "Streaming workloads show low way-table coverage and small gains, while\n"
        "local and media workloads approach the paper's headline results — the\n"
        "trend Sec. VI-D describes."
    )


if __name__ == "__main__":
    main()
