#!/usr/bin/env python3
"""Design-space exploration with Pareto frontiers (``repro.dse``).

This example explores the Sec. VI-D sensitivity grid three ways against one
shared campaign store:

1. a seeded *random* sample places a first set of points on the
   energy/performance plane;
2. an adaptive *successive-halving* search triages a larger budget on short
   traces and promotes only the survivors to full-length runs — cells the
   random pass already simulated are resumed from the store, not re-run;
3. the frontier is printed as the text table and CSV produced by
   ``repro.analysis.reporting`` (the same artifacts ``repro dse`` writes).

Run with::

    python examples/dse_pareto.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_frontier, frontier_csv
from repro.campaign import ResultStore
from repro.dse import run_dse, space_preset

INSTRUCTIONS = 1_000
BENCHMARKS = ("gzip", "streamwrite")  # one paper pick, one synthetic extreme
JOBS = 2


def main() -> None:
    space = space_preset("malec-mini").with_overrides(
        benchmarks=BENCHMARKS, instructions=INSTRUCTIONS
    )
    store_dir = Path(tempfile.mkdtemp(prefix="malec-dse-")) / "dse"
    store = ResultStore(store_dir)
    print(f"space: {space.name} ({space.size} points), store: {store_dir}")

    print("\n1. random sample (budget 6):")
    random_pass = run_dse(
        space, strategy="random", budget=6, jobs=JOBS, store=store, seed=1
    )
    print(
        f"   {random_pass.cells_simulated} cells simulated, "
        f"frontier has {len(random_pass.frontier)} point(s)"
    )

    print("\n2. successive halving (budget 12, same store):")
    halving_pass = run_dse(
        space, strategy="halving", budget=12, jobs=JOBS, store=store, seed=1
    )
    print(
        f"   {halving_pass.cells_simulated} cells simulated, "
        f"{halving_pass.cells_resumed} resumed from the random pass's store"
    )

    print("\nPareto frontier (all objectives minimized, vs Base1ldst):")
    print(format_frontier(halving_pass.frontier, halving_pass.ranks))

    csv_path = store_dir / "frontier.csv"
    csv_path.write_text(frontier_csv(halving_pass.frontier, halving_pass.ranks))
    print(f"\nfrontier CSV written to {csv_path}")


if __name__ == "__main__":
    main()
