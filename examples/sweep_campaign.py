#!/usr/bin/env python3
"""Parallel, resumable sweep campaigns with the ``repro.campaign`` engine.

This example runs the quick Fig. 4 preset (five configurations x one
benchmark per suite) twice against the same campaign directory:

1. the first pass fans the grid out over a small process pool and persists
   one JSON record per (configuration, benchmark) cell;
2. the second pass finds every cell already in the store and skips all
   simulation — resuming is free;

and finally rebuilds the geometric-mean views straight from the directory,
without touching the simulator again.

Run with::

    python examples/sweep_campaign.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import (
    ParallelExecutor,
    ResultStore,
    campaign_preset,
    summarize_store,
)

INSTRUCTIONS = 2_000
JOBS = 2


def progress(event: str, cell, done: int, total: int) -> None:
    label = "skip" if event == "skipped" else "run "
    print(f"  [{done:>2d}/{total}] {label} {cell.benchmark:<6s} {cell.config.name}")


def main() -> None:
    spec = campaign_preset("fig4-mini").with_overrides(instructions=INSTRUCTIONS)
    campaign_dir = Path(tempfile.mkdtemp(prefix="malec-campaign-")) / "fig4-mini"
    store = ResultStore(campaign_dir)

    print(f"campaign directory: {campaign_dir}")
    print(f"\nfirst pass ({JOBS} worker processes):")
    executor = ParallelExecutor(jobs=JOBS, store=store, progress=progress)
    executor.run(spec)
    print(f"  -> {len(executor.completed_cells)} cells simulated, {len(store)} records on disk")

    print("\nsecond pass (same directory — everything resumes from the store):")
    executor = ParallelExecutor(jobs=JOBS, store=store, progress=progress)
    executor.run(spec)
    print(f"  -> {len(executor.completed_cells)} cells simulated, "
          f"{len(executor.skipped_cells)} resumed")

    print("\nanalysis rebuilt from the directory alone:")
    print(summarize_store(store))


if __name__ == "__main__":
    main()
