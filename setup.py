"""Packaging entry point.

The offline evaluation environment cannot reach PyPI, so ``pip install -e .``
must avoid PEP 517 build isolation (which downloads setuptools/wheel into a
fresh build environment).  ``pyproject.toml`` exists for tool configuration
(ruff) and declares a plain setuptools build backend; offline installs must
pass ``--no-build-isolation`` so the already-installed setuptools is used.
All package metadata stays here.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'MALEC: A Multiple Access Low Energy Cache' (DATE 2013)"
    ),
    author="MALEC Reproduction Authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.20"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Development Status :: 5 - Production/Stable",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)
